package ca

import (
	"testing"
	"time"

	"itsbed/internal/clock"
	"itsbed/internal/geo"
	"itsbed/internal/its/messages"
	"itsbed/internal/sim"
	"itsbed/internal/units"
)

// testHarness wires a CA service to a capture sink.
type testHarness struct {
	kernel *sim.Kernel
	state  VehicleState
	sent   [][]byte
	svc    *Service
}

func newHarness(t *testing.T, disableTriggers bool) *testHarness {
	t.Helper()
	h := &testHarness{kernel: sim.NewKernel(1)}
	h.state = VehicleState{
		Position: geo.CISTERLab,
		SpeedMS:  0,
		Length:   0.53,
		Width:    0.29,
	}
	clk := clock.NewNTP(clock.SourceFunc(h.kernel.Now), clock.PerfectNTP(), nil)
	svc, err := New(h.kernel, Config{
		StationID:   2001,
		StationType: units.StationTypePassengerCar,
		Provider:    StateFunc(func() VehicleState { return h.state }),
		Send: func(p []byte) error {
			h.sent = append(h.sent, p)
			return nil
		},
		Clock:           clk,
		DisableTriggers: disableTriggers,
	})
	if err != nil {
		t.Fatal(err)
	}
	h.svc = svc
	return h
}

func TestStaticVehicleSendsAtOneHertz(t *testing.T) {
	h := newHarness(t, false)
	h.svc.Start()
	if err := h.kernel.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	h.svc.Stop()
	// T_GenCamMax = 1 s: expect ~5-6 CAMs in 5 s.
	if len(h.sent) < 5 || len(h.sent) > 7 {
		t.Fatalf("static vehicle sent %d CAMs in 5 s, want ~5", len(h.sent))
	}
}

func TestSpeedChangeTriggersCAM(t *testing.T) {
	h := newHarness(t, false)
	h.svc.Start()
	// Accelerate by >0.5 m/s every 100 ms.
	h.kernel.Every(50*time.Millisecond, 100*time.Millisecond, func() {
		h.state.SpeedMS += 0.6
	})
	if err := h.kernel.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	h.svc.Stop()
	// With the trigger firing each check, expect near 10 Hz.
	if len(h.sent) < 15 {
		t.Fatalf("accelerating vehicle sent %d CAMs in 2 s, want ~20", len(h.sent))
	}
}

func TestHeadingChangeTriggersCAM(t *testing.T) {
	h := newHarness(t, false)
	h.svc.Start()
	h.kernel.Every(50*time.Millisecond, 100*time.Millisecond, func() {
		h.state.HeadingRad += 0.1 // 5.7° per period
	})
	if err := h.kernel.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(h.sent) < 15 {
		t.Fatalf("turning vehicle sent %d CAMs, want ~20", len(h.sent))
	}
}

func TestMinInterval(t *testing.T) {
	h := newHarness(t, false)
	h.svc.Start()
	// Change everything constantly; still at most one CAM per 100 ms.
	h.kernel.Every(10*time.Millisecond, 10*time.Millisecond, func() {
		h.state.SpeedMS += 1
	})
	if err := h.kernel.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(h.sent) > 11 {
		t.Fatalf("sent %d CAMs in 1 s, exceeding the 100 ms floor", len(h.sent))
	}
}

func TestDisableTriggersForcesOneHertz(t *testing.T) {
	h := newHarness(t, true)
	h.svc.Start()
	h.kernel.Every(50*time.Millisecond, 100*time.Millisecond, func() {
		h.state.SpeedMS += 5
	})
	if err := h.kernel.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(h.sent) > 4 {
		t.Fatalf("RSU-style service sent %d CAMs in 3 s, want ~3", len(h.sent))
	}
}

func TestLowFrequencyContainerCadence(t *testing.T) {
	h := newHarness(t, false)
	h.svc.Start()
	h.kernel.Every(50*time.Millisecond, 100*time.Millisecond, func() {
		h.state.SpeedMS += 0.6
	})
	if err := h.kernel.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	withLF := 0
	for _, p := range h.sent {
		cam, err := messages.DecodeCAM(p)
		if err != nil {
			t.Fatal(err)
		}
		if cam.LowFrequency != nil {
			withLF++
		}
	}
	// At 500 ms cadence over 2 s: 4-5 low-frequency containers.
	if withLF < 3 || withLF > 6 {
		t.Fatalf("%d/%d CAMs carried the low-frequency container", withLF, len(h.sent))
	}
	if len(h.sent) > 0 {
		first, err := messages.DecodeCAM(h.sent[0])
		if err != nil {
			t.Fatal(err)
		}
		if first.LowFrequency == nil {
			t.Fatal("first CAM must carry the low-frequency container")
		}
	}
}

func TestCAMContentReflectsState(t *testing.T) {
	h := newHarness(t, false)
	h.state.SpeedMS = 1.5
	h.state.HeadingRad = 0
	h.svc.Start()
	if err := h.kernel.Run(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(h.sent) == 0 {
		t.Fatal("no CAM sent")
	}
	cam, err := messages.DecodeCAM(h.sent[0])
	if err != nil {
		t.Fatal(err)
	}
	if cam.Header.StationID != 2001 {
		t.Fatal("station ID")
	}
	if got := cam.HighFrequency.Speed.MS(); got < 1.49 || got > 1.51 {
		t.Fatalf("speed %v", got)
	}
	if cam.Basic.StationType != units.StationTypePassengerCar {
		t.Fatal("station type")
	}
	if got := cam.Basic.Position.Latitude.Degrees(); got < 41.17 || got > 41.19 {
		t.Fatalf("latitude %v", got)
	}
	if got := float64(cam.HighFrequency.VehicleLength); got != 5 {
		t.Fatalf("vehicle length code %v, want 5 (0.53 m → 5×0.1 m)", got)
	}
}

func TestConfigValidation(t *testing.T) {
	k := sim.NewKernel(1)
	clk := clock.NewNTP(clock.SourceFunc(k.Now), clock.PerfectNTP(), nil)
	if _, err := New(k, Config{Send: func([]byte) error { return nil }, Clock: clk}); err == nil {
		t.Fatal("service without provider accepted")
	}
	if _, err := New(k, Config{Provider: StateFunc(func() VehicleState { return VehicleState{} }), Clock: clk}); err == nil {
		t.Fatal("service without send accepted")
	}
}

func TestReceiver(t *testing.T) {
	var got []*messages.CAM
	r := Receiver{Sink: func(c *messages.CAM) { got = append(got, c) }}
	h := newHarness(t, false)
	h.svc.Start()
	if err := h.kernel.Run(200 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	for _, p := range h.sent {
		r.OnPayload(p)
	}
	if int(r.Received) != len(h.sent) || len(got) != len(h.sent) {
		t.Fatalf("received %d/%d", r.Received, len(h.sent))
	}
	r.OnPayload([]byte{0xff})
	if r.Malformed != 1 {
		t.Fatal("malformed payload not counted")
	}
}

func TestStartStopIdempotent(t *testing.T) {
	h := newHarness(t, false)
	h.svc.Start()
	h.svc.Start() // no double ticker
	if err := h.kernel.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	n := len(h.sent)
	if n > 2 {
		t.Fatalf("double Start caused %d CAMs for a static vehicle", n)
	}
	h.svc.Stop()
	h.svc.Stop()
	if err := h.kernel.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(h.sent) != n {
		t.Fatal("CAMs sent after Stop")
	}
}

func TestPathHistoryAccumulates(t *testing.T) {
	h := newHarness(t, false)
	// Drive the vehicle north 0.5 m per 100 ms so spacing is exceeded
	// and dynamics trigger CAMs.
	frame0, err := geo.NewFrame(h.state.Position)
	if err != nil {
		t.Fatal(err)
	}
	y := 0.0
	h.kernel.Every(50*time.Millisecond, 100*time.Millisecond, func() {
		y += 0.5
		h.state.Position = frame0.ToGeodetic(geo.Point{X: 0, Y: y})
	})
	h.svc.Start()
	if err := h.kernel.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	// The last CAM with a low-frequency container must carry a
	// non-empty path history with plausible deltas.
	var lf *messages.BasicVehicleContainerLowFrequency
	for _, p := range h.sent {
		cam, err := messages.DecodeCAM(p)
		if err != nil {
			t.Fatal(err)
		}
		if cam.LowFrequency != nil {
			lf = cam.LowFrequency
		}
	}
	if lf == nil {
		t.Fatal("no low-frequency container observed")
	}
	if len(lf.PathHistory) < 2 {
		t.Fatalf("path history has %d points", len(lf.PathHistory))
	}
	// Points are behind the vehicle (south): negative latitude deltas,
	// growing with age.
	if lf.PathHistory[0].DeltaLatitude >= 0 {
		t.Fatalf("first delta %d, want negative (behind)", lf.PathHistory[0].DeltaLatitude)
	}
	for i := 1; i < len(lf.PathHistory); i++ {
		if lf.PathHistory[i].DeltaLatitude > lf.PathHistory[i-1].DeltaLatitude {
			t.Fatal("path points not ordered most-recent-first")
		}
		if lf.PathHistory[i].DeltaTime < lf.PathHistory[i-1].DeltaTime {
			t.Fatal("delta times not increasing with age")
		}
	}
	if len(lf.PathHistory) > 10 {
		t.Fatal("history not bounded")
	}
}

// fixedGate is a TxGate returning a constant floor, standing in for
// the radio package's DCC controller.
type fixedGate struct {
	min   time.Duration
	asked int
}

func (g *fixedGate) MinInterval() time.Duration { g.asked++; return g.min }

func TestTxGateThrottlesCAMGeneration(t *testing.T) {
	h := &testHarness{kernel: sim.NewKernel(1)}
	h.state = VehicleState{Position: geo.CISTERLab, SpeedMS: 10, Length: 0.53, Width: 0.29}
	gate := &fixedGate{min: 300 * time.Millisecond}
	var at []time.Duration
	clk := clock.NewNTP(clock.SourceFunc(h.kernel.Now), clock.PerfectNTP(), nil)
	svc, err := New(h.kernel, Config{
		StationID:   2002,
		StationType: units.StationTypePassengerCar,
		Provider: StateFunc(func() VehicleState {
			// Drift the position every read so the standard's own
			// triggers would fire at every 100 ms check without a gate.
			s := h.state
			s.Position.Lat += 0.001 * h.kernel.Now().Seconds()
			return s
		}),
		Send:  func(p []byte) error { at = append(at, h.kernel.Now()); return nil },
		Clock: clk,
		Gate:  gate,
	})
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	if err := h.kernel.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	svc.Stop()
	if gate.asked == 0 {
		t.Fatal("gate never consulted")
	}
	if len(at) < 2 {
		t.Fatalf("only %d CAMs sent under gating", len(at))
	}
	for i := 1; i < len(at); i++ {
		if gap := at[i] - at[i-1]; gap < 300*time.Millisecond {
			t.Fatalf("CAM gap %v below the 300 ms gate floor", gap)
		}
	}
	// Without the gate the same drift generates CAMs near the 100 ms
	// check cadence, so the gate must have suppressed a majority.
	if len(at) > 11 {
		t.Fatalf("%d CAMs in 3 s despite a 300 ms floor", len(at))
	}
}

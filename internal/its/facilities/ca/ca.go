// Package ca implements the Cooperative Awareness basic service
// (ETSI EN 302 637-2): cyclic CAM generation with the standard's
// dynamics-triggered rules, and reception handling that feeds the LDM.
//
// Generation rules: a CAM is generated when at least T_GenCamMin
// (100 ms) has elapsed since the previous one AND the station's
// heading changed by more than 4°, its position by more than 4 m, or
// its speed by more than 0.5 m/s; or unconditionally when T_GenCamMax
// (1000 ms) has elapsed. The low-frequency container is included at
// most every 500 ms.
package ca

import (
	"fmt"
	"math"
	"time"

	"itsbed/internal/clock"
	"itsbed/internal/flight"
	"itsbed/internal/geo"
	"itsbed/internal/its/messages"
	"itsbed/internal/metrics"
	"itsbed/internal/sim"
	"itsbed/internal/tracing"
	"itsbed/internal/units"
)

// Standard generation-rule constants.
const (
	TGenCamMin   = 100 * time.Millisecond
	TGenCamMax   = 1000 * time.Millisecond
	TCheckGenCam = 100 * time.Millisecond
	TLowFreq     = 500 * time.Millisecond

	headingTriggerDeg = 4.0
	positionTriggerM  = 4.0
	speedTriggerMS    = 0.5
)

// VehicleState is the kinematic snapshot a CAM advertises.
type VehicleState struct {
	Position   geo.LatLon
	SpeedMS    float64
	HeadingRad float64
	AccelMS2   float64
	// YawRateDegS in degrees per second.
	YawRateDegS float64
	// Length and Width of the vehicle in metres.
	Length float64
	Width  float64
}

// StateProvider yields the station's current state.
type StateProvider interface {
	VehicleState() VehicleState
}

// StateFunc adapts a function to StateProvider.
type StateFunc func() VehicleState

// VehicleState implements StateProvider.
func (f StateFunc) VehicleState() VehicleState { return f() }

// SendFunc transmits an encoded CAM through the lower layers
// (BTP port 2001 over GN SHB).
type SendFunc func(payload []byte) error

// TxGate throttles CAM generation beyond the standard's own rules:
// MinInterval returns the minimum allowed gap since the previous CAM.
// A DCC controller (ETSI TS 102 687) implements it from the measured
// channel-busy ratio; the gate overrides even the T_GenCamMax
// unconditional trigger, exactly as DCC sits below the facilities
// layer in the ITS-G5 architecture.
type TxGate interface {
	MinInterval() time.Duration
}

// Config parameterises the CA service.
type Config struct {
	StationID   units.StationID
	StationType units.StationType
	Provider    StateProvider
	Send        SendFunc
	// Clock provides ITS timestamps; required.
	Clock *clock.NTPClock
	// DisableTriggers forces pure 1 Hz operation (RSU-style CAMs).
	DisableTriggers bool
	// Gate, when non-nil, throttles generation to at most one CAM per
	// Gate.MinInterval() (DCC channel-load control).
	Gate TxGate
	// Metrics, when non-nil, receives ca_* counters labeled with Name.
	Metrics *metrics.Registry
	// Name is the station label used on metric families.
	Name string
	// Tracer, when non-nil, records a span for each generated CAM.
	Tracer *tracing.Tracer
	// Flight, when enabled, records a cam.tx event per generated CAM.
	Flight flight.Hook
}

// Service is the CA basic service of one station.
type Service struct {
	cfg    Config
	kernel *sim.Kernel
	ticker *sim.Ticker

	lastGen   time.Duration
	lastLF    time.Duration
	hasLast   bool
	lastState VehicleState
	hasLastLF bool
	// history records past reference positions for the low-frequency
	// container's path history.
	history []pathSample

	// Generated counts CAMs produced.
	Generated uint64
	// SendErrors counts lower-layer send failures.
	SendErrors uint64

	mGen, mErr *metrics.Counter
}

// New creates a CA service. Start must be called to begin generation.
func New(kernel *sim.Kernel, cfg Config) (*Service, error) {
	if cfg.Provider == nil || cfg.Send == nil || cfg.Clock == nil {
		return nil, fmt.Errorf("ca: provider, send and clock are required")
	}
	s := &Service{cfg: cfg, kernel: kernel}
	if cfg.Metrics != nil {
		st := metrics.L("station", cfg.Name)
		s.mGen = cfg.Metrics.Counter("ca_generated_total", st)
		s.mErr = cfg.Metrics.Counter("ca_send_errors_total", st)
	}
	return s, nil
}

// Start begins the generation check cycle.
func (s *Service) Start() {
	if s.ticker != nil {
		return
	}
	s.ticker = s.kernel.Every(0, TCheckGenCam, s.check)
}

// Stop halts generation.
func (s *Service) Stop() {
	if s.ticker != nil {
		s.ticker.Stop()
		s.ticker = nil
	}
}

func (s *Service) check() {
	now := s.kernel.Now()
	st := s.cfg.Provider.VehicleState()
	elapsed := now - s.lastGen
	minGap := TGenCamMin
	if s.cfg.Gate != nil {
		if g := s.cfg.Gate.MinInterval(); g > minGap {
			minGap = g
		}
	}
	if s.hasLast && elapsed < minGap {
		return
	}
	trigger := !s.hasLast || elapsed >= TGenCamMax
	if !trigger && !s.cfg.DisableTriggers {
		dHeading := math.Abs(geo.HeadingDiff(s.lastState.HeadingRad, st.HeadingRad)) * 180 / math.Pi
		frame, err := geo.NewFrame(s.lastState.Position)
		if err != nil {
			return
		}
		dPos := frame.ToLocal(st.Position).DistanceTo(geo.Point{})
		dSpeed := math.Abs(st.SpeedMS - s.lastState.SpeedMS)
		trigger = dHeading > headingTriggerDeg || dPos > positionTriggerM || dSpeed > speedTriggerMS
	}
	if !trigger {
		return
	}
	s.generate(now, st)
}

func (s *Service) generate(now time.Duration, st VehicleState) {
	ts := clock.TimestampIts(s.cfg.Clock.Now())
	cam := messages.NewCAM(s.cfg.StationID, units.DeltaTimeFromTimestamp(ts))
	cam.Basic = messages.BasicContainer{
		StationType: s.cfg.StationType,
		Position: messages.ReferencePosition{
			Latitude:             units.LatitudeFromDegrees(st.Position.Lat),
			Longitude:            units.LongitudeFromDegrees(st.Position.Lon),
			SemiMajorConfidence:  units.SemiAxisFromMetres(0.05),
			SemiMinorConfidence:  units.SemiAxisFromMetres(0.05),
			SemiMajorOrientation: units.HeadingFromRadians(st.HeadingRad),
			AltitudeValue:        messages.AltitudeUnavailable,
		},
	}
	accel := int16(math.Round(st.AccelMS2 * 10))
	if accel < -160 {
		accel = -160
	}
	if accel > 160 {
		accel = 160
	}
	yaw := int32(math.Round(st.YawRateDegS * 100))
	if yaw < -32766 {
		yaw = -32766
	}
	if yaw > 32766 {
		yaw = 32766
	}
	length := uint16(math.Round(st.Length * 10))
	if length == 0 || length > 1022 {
		length = 1023 // unavailable
	}
	width := uint8(math.Round(st.Width * 10))
	if width == 0 || width > 61 {
		width = 62 // unavailable
	}
	cam.HighFrequency = messages.BasicVehicleContainerHighFrequency{
		Heading:                  units.HeadingFromRadians(st.HeadingRad),
		HeadingConfidence:        10, // 1.0°
		Speed:                    units.SpeedFromMS(st.SpeedMS),
		SpeedConfidence:          5, // 0.05 m/s
		DriveDirection:           messages.DriveDirectionForward,
		VehicleLength:            length,
		VehicleWidth:             width,
		LongitudinalAcceleration: accel,
		AccelerationConfidence:   10,
		Curvature:                units.CurvatureUnavailable,
		YawRate:                  yaw,
	}
	if !s.hasLastLF || s.kernel.Now()-s.lastLF >= TLowFreq {
		cam.LowFrequency = &messages.BasicVehicleContainerLowFrequency{
			VehicleRole:    messages.VehicleRoleDefault,
			ExteriorLights: 0,
			PathHistory:    s.pathHistory(st),
		}
		s.lastLF = s.kernel.Now()
		s.hasLastLF = true
	}
	sp := s.cfg.Tracer.Start("ca.generate", "facilities", s.cfg.Name, now)
	payload, err := cam.Encode()
	if err != nil {
		sp.Drop(s.kernel.Now(), "encode_error")
		s.SendErrors++
		s.mErr.Inc()
		return
	}
	var sendErr error
	s.cfg.Tracer.Scope(sp, func() { sendErr = s.cfg.Send(payload) })
	if sendErr != nil {
		sp.Drop(s.kernel.Now(), "send_error")
		s.SendErrors++
		s.mErr.Inc()
		return
	}
	sp.End(s.kernel.Now())
	s.Generated++
	s.mGen.Inc()
	s.cfg.Flight.Record(now, flight.CAMTx, 0, int64(s.cfg.StationID), 0)
	s.lastGen = now
	s.lastState = st
	s.hasLast = true
}

// pathSample is one recorded reference position.
type pathSample struct {
	pos geo.LatLon
	at  time.Duration
}

// maxHistorySamples bounds the retained trail; EN 302 637-2 allows up
// to 40 path points, the testbed keeps a short recent trail.
const maxHistorySamples = 10

// minPathSpacing is the minimum distance between retained samples.
const minPathSpacing = 0.2 // metres

// pathHistory converts the recorded trail into ETSI path points:
// deltas relative to the CAM's reference position, most recent first.
// It also appends the current position to the trail.
func (s *Service) pathHistory(st VehicleState) []messages.PathPoint {
	now := s.kernel.Now()
	// Record the new sample if it moved far enough from the last one.
	record := len(s.history) == 0
	if !record {
		last := s.history[len(s.history)-1]
		frame, err := geo.NewFrame(last.pos)
		if err == nil && frame.ToLocal(st.Position).DistanceTo(geo.Point{}) >= minPathSpacing {
			record = true
		}
	}
	if record {
		s.history = append(s.history, pathSample{pos: st.Position, at: now})
		if len(s.history) > maxHistorySamples {
			s.history = s.history[len(s.history)-maxHistorySamples:]
		}
	}
	// Build deltas, most recent first, skipping the newest sample when
	// it coincides with the reference position.
	var out []messages.PathPoint
	for i := len(s.history) - 1; i >= 0; i-- {
		h := s.history[i]
		dLat := int64(units.LatitudeFromDegrees(h.pos.Lat)) - int64(units.LatitudeFromDegrees(st.Position.Lat))
		dLon := int64(units.LongitudeFromDegrees(h.pos.Lon)) - int64(units.LongitudeFromDegrees(st.Position.Lon))
		if dLat == 0 && dLon == 0 {
			continue
		}
		clamp := func(v int64) int32 {
			if v < -131071 {
				return -131071
			}
			if v > 131072 {
				return 131072
			}
			return int32(v)
		}
		dt := (now - h.at) / (10 * time.Millisecond)
		if dt > 65535 {
			dt = 65535
		}
		out = append(out, messages.PathPoint{
			DeltaLatitude:  clamp(dLat),
			DeltaLongitude: clamp(dLon),
			DeltaTime:      uint16(dt),
		})
	}
	return out
}

// Receiver handles incoming CAMs: decode, deliver to the LDM sink and
// an optional application callback.
type Receiver struct {
	// Sink receives every decoded CAM (typically the LDM).
	Sink func(*messages.CAM)
	// Metrics, when non-nil, receives ca_rx_* counters labeled with
	// Name.
	Metrics *metrics.Registry
	// Name is the station label used on metric families.
	Name string
	// Tracer, when non-nil, records a span for each received CAM.
	Tracer *tracing.Tracer
	// Flight, when enabled, records a cam.rx event per decoded (or
	// malformed) CAM.
	Flight flight.Hook
	// Now supplies span timestamps when Tracer is set.
	Now func() time.Duration
	// Received counts successfully decoded CAMs.
	Received uint64
	// Malformed counts undecodable payloads.
	Malformed uint64

	mRecv, mMalf *metrics.Counter
}

// OnPayload processes one received CA payload.
func (r *Receiver) OnPayload(payload []byte) {
	if r.Metrics != nil && r.mRecv == nil {
		st := metrics.L("station", r.Name)
		r.mRecv = r.Metrics.Counter("ca_rx_received_total", st)
		r.mMalf = r.Metrics.Counter("ca_rx_malformed_total", st)
	}
	now := r.now()
	cam, err := messages.DecodeCAM(payload)
	if err != nil {
		if r.Tracer != nil {
			r.Tracer.Start("ca.receive", "facilities", r.Name, now).Drop(now, "malformed")
		}
		r.Malformed++
		r.mMalf.Inc()
		r.Flight.Record(now, flight.CAMRx, flight.RxMalformed, 0, 0)
		return
	}
	var sp *tracing.Span
	if r.Tracer != nil {
		sp = r.Tracer.Start("ca.receive", "facilities", r.Name, now)
	}
	r.Received++
	r.mRecv.Inc()
	r.Flight.Record(now, flight.CAMRx, flight.RxOK, int64(cam.Header.StationID), 0)
	if r.Sink != nil {
		r.Tracer.Scope(sp, func() { r.Sink(cam) })
	}
	sp.End(r.now())
}

func (r *Receiver) now() time.Duration {
	if r.Now == nil {
		return 0
	}
	return r.Now()
}

// Package den implements the Decentralized Environmental Notification
// basic service (ETSI EN 302 637-3): application-triggered DENM
// origination with ActionID management, repetition, update and
// cancellation, plus the reception state machine that deduplicates
// repeated DENMs and delivers new or updated events to the
// application and the LDM.
package den

import (
	"fmt"
	"time"

	"itsbed/internal/clock"
	"itsbed/internal/flight"
	"itsbed/internal/geo"
	"itsbed/internal/its/messages"
	"itsbed/internal/metrics"
	"itsbed/internal/sim"
	"itsbed/internal/tracing"
	"itsbed/internal/units"
)

// SendFunc transmits an encoded DENM through the lower layers
// (BTP port 2002 over GN GeoBroadcast to the event area).
type SendFunc func(payload []byte, area geonetArea) error

// geonetArea carries the destination-area parameters without importing
// geonet (kept minimal to avoid a facilities→network dependency; the
// stack adapts it).
type geonetArea struct {
	Centre       geo.LatLon
	RadiusMetres uint16
}

// Area is the exported alias for the destination area.
type Area = geonetArea

// NewArea builds a circular destination area.
func NewArea(centre geo.LatLon, radiusMetres uint16) Area {
	return Area{Centre: centre, RadiusMetres: radiusMetres}
}

// EventRequest describes an application trigger (AppDENM_trigger of
// EN 302 637-3).
type EventRequest struct {
	EventType messages.EventType
	Position  geo.LatLon
	Quality   messages.InformationQuality
	// Validity of the event; zero selects the standard 600 s default.
	Validity time.Duration
	// RepetitionInterval between retransmissions; zero disables
	// repetition (single shot, as the testbed uses).
	RepetitionInterval time.Duration
	// RepetitionDuration bounds total repetition time.
	RepetitionDuration time.Duration
	// RelevanceRadius of the destination area in metres; zero selects
	// 200 m.
	RelevanceRadius uint16
	// EventSpeedMS and EventHeadingRad optionally populate the
	// location container.
	EventSpeedMS    float64
	EventHeadingRad float64
}

// Config parameterises the DEN service.
type Config struct {
	StationID   units.StationID
	StationType units.StationType
	Send        SendFunc
	Clock       *clock.NTPClock
	// Metrics, when non-nil, receives den_* counters labeled with Name.
	Metrics *metrics.Registry
	// Name is the station label used on metric families.
	Name string
	// Tracer, when non-nil, records trigger/encode spans; repetitions
	// re-attach to their trigger by ActionID.
	Tracer *tracing.Tracer
	// Flight, when enabled, records a denm.tx event per transmission
	// (including repetitions), carrying the ActionID.
	Flight flight.Hook
}

// activeEvent is one originated event under repetition management.
type activeEvent struct {
	denm   *messages.DENM
	area   Area
	ticker *sim.Ticker
	until  time.Duration
}

// Service is the DEN basic service of one station.
type Service struct {
	cfg    Config
	kernel *sim.Kernel
	seq    uint16
	active map[messages.ActionID]*activeEvent

	// OnTransmit, if set, observes every DENM handed to the lower
	// layers (the paper's "RSU sends DENM" timestamping point).
	OnTransmit func(*messages.DENM)

	// Originated counts trigger requests accepted.
	Originated uint64
	// Transmitted counts DENMs put on the air (including repetitions).
	Transmitted uint64
	// SendErrors counts lower-layer failures.
	SendErrors uint64

	mTrig, mTx, mRep, mErr *metrics.Counter
}

// New creates a DEN service.
func New(kernel *sim.Kernel, cfg Config) (*Service, error) {
	if cfg.Send == nil || cfg.Clock == nil {
		return nil, fmt.Errorf("den: send and clock are required")
	}
	s := &Service{cfg: cfg, kernel: kernel, active: make(map[messages.ActionID]*activeEvent)}
	if cfg.Metrics != nil {
		st := metrics.L("station", cfg.Name)
		s.mTrig = cfg.Metrics.Counter("den_triggers_total", st)
		s.mTx = cfg.Metrics.Counter("den_transmissions_total", st)
		s.mRep = cfg.Metrics.Counter("den_repetitions_total", st)
		s.mErr = cfg.Metrics.Counter("den_send_errors_total", st)
	}
	return s, nil
}

// Trigger originates a new DENM per the request and returns its
// ActionID (AppDENM_trigger).
func (s *Service) Trigger(req EventRequest) (messages.ActionID, error) {
	s.seq++
	id := messages.ActionID{OriginatingStationID: s.cfg.StationID, SequenceNumber: s.seq}
	now := clock.TimestampIts(s.cfg.Clock.Now())
	d := messages.NewDENM(s.cfg.StationID)
	validity := uint32(messages.DefaultValidityDuration)
	if req.Validity > 0 {
		validity = uint32(req.Validity / time.Second)
	}
	d.Management = messages.ManagementContainer{
		ActionID:         id,
		DetectionTime:    now,
		ReferenceTime:    now,
		EventPosition:    refPosition(req.Position),
		ValidityDuration: &validity,
		StationType:      s.cfg.StationType,
	}
	if req.RepetitionInterval > 0 {
		ti := uint16(req.RepetitionInterval / time.Millisecond)
		if ti == 0 {
			ti = 1
		}
		d.Management.TransmissionInterval = &ti
	}
	d.Situation = &messages.SituationContainer{
		InformationQuality: req.Quality,
		EventType:          req.EventType,
	}
	// Location container: a single empty trace at the event position
	// (the testbed's events are points, not itineraries).
	loc := &messages.LocationContainer{Traces: []messages.Trace{{}}}
	if req.EventSpeedMS > 0 {
		sp := units.SpeedFromMS(req.EventSpeedMS)
		loc.EventSpeed = &sp
		h := units.HeadingFromRadians(req.EventHeadingRad)
		loc.EventPositionHeading = &h
	}
	d.Location = loc

	radius := req.RelevanceRadius
	if radius == 0 {
		radius = 200
	}
	area := NewArea(req.Position, radius)
	ev := &activeEvent{denm: d, area: area}
	s.active[id] = ev
	s.Originated++
	s.mTrig.Inc()
	// The trigger span parents every transmission of this event —
	// including repetitions, which fire from a ticker and re-attach by
	// the ActionID identity the message carries.
	sp := s.cfg.Tracer.Start("den.trigger", "facilities", s.cfg.Name, s.kernel.Now())
	sp.SetAttr("action_id", fmt.Sprintf("%d:%d", uint32(id.OriginatingStationID), id.SequenceNumber))
	s.cfg.Tracer.Bind(tracing.KeyDENM(s.cfg.Name, uint32(id.OriginatingStationID), id.SequenceNumber), sp)
	var txErr error
	s.cfg.Tracer.Scope(sp, func() { txErr = s.transmit(ev) })
	sp.End(s.kernel.Now())
	if txErr != nil {
		return id, txErr
	}
	if req.RepetitionInterval > 0 {
		dur := req.RepetitionDuration
		if dur <= 0 {
			dur = time.Duration(validity) * time.Second
		}
		ev.until = s.kernel.Now() + dur
		ev.ticker = s.kernel.Every(req.RepetitionInterval, req.RepetitionInterval, func() {
			if s.kernel.Now() > ev.until {
				s.stopRepetition(id)
				return
			}
			// Repetitions re-send the DENM unchanged: the reference
			// time stays put so receivers recognise them as copies,
			// not updates (EN 302 637-3 §8.1.2).
			s.mRep.Inc()
			if err := s.transmit(ev); err != nil {
				s.SendErrors++
			}
		})
	}
	return id, nil
}

// Update re-announces an active event with a new event type and/or
// quality (AppDENM_update).
func (s *Service) Update(id messages.ActionID, et messages.EventType, q messages.InformationQuality) error {
	ev, ok := s.active[id]
	if !ok {
		return fmt.Errorf("den: update of unknown action %v", id)
	}
	ev.denm.Situation.EventType = et
	ev.denm.Situation.InformationQuality = q
	ev.denm.Management.ReferenceTime = clock.TimestampIts(s.cfg.Clock.Now())
	return s.transmit(ev)
}

// Cancel terminates an event originated by this station
// (AppDENM_termination with isCancellation).
func (s *Service) Cancel(id messages.ActionID) error {
	ev, ok := s.active[id]
	if !ok {
		return fmt.Errorf("den: cancel of unknown action %v", id)
	}
	term := messages.TerminationIsCancellation
	ev.denm.Management.Termination = &term
	ev.denm.Management.ReferenceTime = clock.TimestampIts(s.cfg.Clock.Now())
	err := s.transmit(ev)
	s.stopRepetition(id)
	delete(s.active, id)
	return err
}

func (s *Service) stopRepetition(id messages.ActionID) {
	if ev, ok := s.active[id]; ok && ev.ticker != nil {
		ev.ticker.Stop()
		ev.ticker = nil
	}
}

// Stop halts all repetition tickers (shutdown).
func (s *Service) Stop() {
	for id := range s.active {
		s.stopRepetition(id)
	}
}

func (s *Service) transmit(ev *activeEvent) error {
	id := ev.denm.Management.ActionID
	parent := s.cfg.Tracer.Current()
	if parent == nil {
		// Repetition ticker: re-attach to the originating trigger.
		parent = s.cfg.Tracer.Find(tracing.KeyDENM(s.cfg.Name, uint32(id.OriginatingStationID), id.SequenceNumber))
	}
	sp := s.cfg.Tracer.StartChild(parent, "den.transmit", "facilities", s.cfg.Name, s.kernel.Now())
	payload, err := ev.denm.Encode()
	if err != nil {
		s.SendErrors++
		s.mErr.Inc()
		sp.Drop(s.kernel.Now(), "encode_error")
		return fmt.Errorf("den: encode: %w", err)
	}
	var sendErr error
	s.cfg.Tracer.Scope(sp, func() { sendErr = s.cfg.Send(payload, ev.area) })
	if sendErr != nil {
		s.SendErrors++
		s.mErr.Inc()
		sp.Drop(s.kernel.Now(), "send_error")
		return fmt.Errorf("den: send: %w", sendErr)
	}
	sp.End(s.kernel.Now())
	s.Transmitted++
	s.mTx.Inc()
	s.cfg.Flight.Record(s.kernel.Now(), flight.DENMTx, 0,
		int64(uint32(id.OriginatingStationID)), int64(id.SequenceNumber))
	if s.OnTransmit != nil {
		s.OnTransmit(ev.denm)
	}
	return nil
}

func refPosition(p geo.LatLon) messages.ReferencePosition {
	return messages.ReferencePosition{
		Latitude:            units.LatitudeFromDegrees(p.Lat),
		Longitude:           units.LongitudeFromDegrees(p.Lon),
		SemiMajorConfidence: units.SemiAxisFromMetres(0.5),
		SemiMinorConfidence: units.SemiAxisFromMetres(0.5),
		AltitudeValue:       messages.AltitudeUnavailable,
	}
}

// Receiver implements the DENM reception state machine: repeated
// copies of the same (ActionID, ReferenceTime) are dropped, new events
// and genuine updates are delivered. When keep-alive forwarding is
// enabled (EN 302 637-3 §8.2.2), the receiver schedules re-broadcasts
// of events it did not originate, so a warning outlives its source in
// the region of interest.
type Receiver struct {
	// Sink receives each new or updated DENM (typically LDM ingestion
	// plus the application handler).
	Sink func(*messages.DENM)
	// KAF, when non-nil, enables keep-alive forwarding through it.
	KAF  *KeepAliveForwarder
	seen map[messages.ActionID]uint64 // last delivered referenceTime

	// Metrics, when non-nil, receives den_rx_* counters labeled with
	// Name.
	Metrics *metrics.Registry
	// Name is the station label used on metric families.
	Name string
	// Tracer, when non-nil, records decode/deliver spans (suppressed
	// repetitions end with drop_reason=repetition). Now supplies span
	// timestamps and is required alongside Tracer.
	Tracer *tracing.Tracer
	// Flight, when enabled, records a denm.rx event per decoded (or
	// malformed) DENM.
	Flight flight.Hook
	// Now is the time source for span stamps (the simulation kernel).
	Now func() time.Duration

	// Received counts successfully decoded DENMs.
	Received uint64
	// Repeated counts suppressed repetitions.
	Repeated uint64
	// Malformed counts undecodable payloads.
	Malformed uint64

	mRecv, mSupp, mMalf *metrics.Counter
}

func (r *Receiver) initMetrics() {
	if r.Metrics == nil || r.mRecv != nil {
		return
	}
	st := metrics.L("station", r.Name)
	r.mRecv = r.Metrics.Counter("den_rx_received_total", st)
	r.mSupp = r.Metrics.Counter("den_rx_suppressed_total", st)
	r.mMalf = r.Metrics.Counter("den_rx_malformed_total", st)
}

// OnPayload processes one received DEN payload.
func (r *Receiver) OnPayload(payload []byte) {
	r.initMetrics()
	now := r.now()
	d, err := messages.DecodeDENM(payload)
	if err != nil {
		r.Malformed++
		r.mMalf.Inc()
		r.Flight.Record(now, flight.DENMRx, flight.RxMalformed, 0, 0)
		if r.Tracer != nil {
			sp := r.Tracer.Start("den.receive", "facilities", r.Name, now)
			sp.Drop(r.now(), "malformed")
		}
		return
	}
	r.Received++
	r.mRecv.Inc()
	r.Flight.Record(now, flight.DENMRx, flight.RxOK,
		int64(uint32(d.Management.ActionID.OriginatingStationID)), int64(d.Management.ActionID.SequenceNumber))
	if r.seen == nil {
		r.seen = make(map[messages.ActionID]uint64)
	}
	id := d.Management.ActionID
	var sp *tracing.Span
	if r.Tracer != nil {
		sp = r.Tracer.Start("den.receive", "facilities", r.Name, now)
		sp.SetAttr("action_id", fmt.Sprintf("%d:%d", uint32(id.OriginatingStationID), id.SequenceNumber))
		// Bind the last received copy so this station's keep-alive
		// re-broadcast re-attaches to what it heard.
		r.Tracer.Bind(tracing.KeyDENM(r.Name, uint32(id.OriginatingStationID), id.SequenceNumber), sp)
	}
	if r.KAF != nil {
		// Every copy refreshes the forwarder, including repetitions:
		// hearing the event again postpones this station's own
		// keep-alive re-broadcast (the standard's back-off behaviour).
		r.KAF.Observe(d, payload)
	}
	if last, ok := r.seen[id]; ok && d.Management.ReferenceTime <= last {
		r.Repeated++
		r.mSupp.Inc()
		sp.Drop(r.now(), "repetition")
		return
	}
	r.seen[id] = d.Management.ReferenceTime
	if r.Sink != nil {
		r.Tracer.Scope(sp, func() { r.Sink(d) })
	}
	sp.End(r.now())
}

// Reset forgets the duplicate-detection state — a restarted station
// process delivers the next copy of every event as if it were new.
// Counters are cumulative across the restart and are not reset.
func (r *Receiver) Reset() {
	r.seen = nil
}

// now returns the receiver's clock, zero when unset (tracing off).
func (r *Receiver) now() time.Duration {
	if r.Now == nil {
		return 0
	}
	return r.Now()
}

// ForwardFunc re-broadcasts a raw DENM payload to the event's area.
type ForwardFunc func(payload []byte, area Area) error

// KeepAliveForwarder implements DENM keep-alive forwarding: a station
// inside the relevance area that stops hearing an active event
// re-broadcasts the last received DENM so the warning persists, until
// the event's validity expires or a termination arrives.
type KeepAliveForwarder struct {
	kernel  *sim.Kernel
	forward ForwardFunc
	// Interval between silence-triggered re-broadcasts; the standard
	// derives it from the transmissionInterval field when present.
	defaultInterval time.Duration
	entries         map[messages.ActionID]*kafEntry

	// Metrics, when non-nil, receives the den_kaf_forwarded_total
	// counter labeled with Name. Set before the first Observe.
	Metrics *metrics.Registry
	// Name is the station label used on metric families.
	Name string
	// Tracer, when non-nil, records keep-alive re-broadcast spans,
	// attached to the last received copy of the event by ActionID.
	Tracer *tracing.Tracer

	// Forwarded counts keep-alive re-broadcasts.
	Forwarded uint64

	mFwd *metrics.Counter
}

type kafEntry struct {
	payload []byte
	area    Area
	timer   *sim.Event
	expires time.Duration
	stopped bool
	// lastRef is the highest ReferenceTime observed; only messages
	// advancing it restart the validity interval.
	lastRef uint64
}

// NewKeepAliveForwarder builds a forwarder. defaultInterval applies to
// DENMs that carry no transmissionInterval; zero selects 500 ms.
func NewKeepAliveForwarder(kernel *sim.Kernel, forward ForwardFunc, defaultInterval time.Duration) *KeepAliveForwarder {
	if defaultInterval <= 0 {
		defaultInterval = 500 * time.Millisecond
	}
	return &KeepAliveForwarder{
		kernel:          kernel,
		forward:         forward,
		defaultInterval: defaultInterval,
		entries:         make(map[messages.ActionID]*kafEntry),
	}
}

// Observe records a received DENM copy and (re)arms the silence timer.
func (k *KeepAliveForwarder) Observe(d *messages.DENM, payload []byte) {
	id := d.Management.ActionID
	e, ok := k.entries[id]
	if d.IsTermination() {
		// A termination cancels forwarding and is not itself kept
		// alive.
		if ok {
			e.stop()
			delete(k.entries, id)
		}
		return
	}
	if !ok {
		e = &kafEntry{lastRef: d.Management.ReferenceTime}
		k.entries[id] = e
		// Validity runs from the event's first observation here; later
		// copies must NOT push expiry out again, or repetitions would
		// keep the forwarder alive indefinitely (EN 302 637-3).
		e.expires = k.kernel.Now() + time.Duration(d.Validity())*time.Second
	} else if d.Management.ReferenceTime < e.lastRef {
		return // stale copy of an older version
	} else if d.Management.ReferenceTime > e.lastRef {
		// A genuine update restarts the validity interval.
		e.expires = k.kernel.Now() + time.Duration(d.Validity())*time.Second
		e.lastRef = d.Management.ReferenceTime
	}
	e.payload = append(e.payload[:0], payload...)
	e.area = NewArea(geo.LatLon{
		Lat: d.Management.EventPosition.Latitude.Degrees(),
		Lon: d.Management.EventPosition.Longitude.Degrees(),
	}, 200)
	interval := k.defaultInterval
	if ti := d.Management.TransmissionInterval; ti != nil {
		interval = time.Duration(*ti) * time.Millisecond
	}
	k.arm(id, e, interval)
}

func (e *kafEntry) stop() {
	e.stopped = true
	if e.timer != nil {
		e.timer.Cancel()
	}
}

// arm schedules the next keep-alive broadcast after interval of
// silence.
func (k *KeepAliveForwarder) arm(id messages.ActionID, e *kafEntry, interval time.Duration) {
	if e.timer != nil {
		e.timer.Cancel()
	}
	e.stopped = false
	e.timer = k.kernel.Schedule(interval, func() {
		if e.stopped || k.kernel.Now() >= e.expires {
			delete(k.entries, id)
			return
		}
		if k.forward != nil {
			now := k.kernel.Now()
			parent := k.Tracer.Find(tracing.KeyDENM(k.Name, uint32(id.OriginatingStationID), id.SequenceNumber))
			sp := k.Tracer.StartChild(parent, "den.kaf_forward", "facilities", k.Name, now)
			var fwdErr error
			k.Tracer.Scope(sp, func() { fwdErr = k.forward(e.payload, e.area) })
			sp.End(k.kernel.Now())
			if fwdErr == nil {
				k.Forwarded++
				if k.Metrics != nil && k.mFwd == nil {
					k.mFwd = k.Metrics.Counter("den_kaf_forwarded_total", metrics.L("station", k.Name))
				}
				k.mFwd.Inc()
			}
		}
		k.arm(id, e, interval)
	})
}

// Active reports the number of events under keep-alive management.
func (k *KeepAliveForwarder) Active() int { return len(k.entries) }

// Stop cancels all timers (shutdown).
func (k *KeepAliveForwarder) Stop() {
	for id, e := range k.entries {
		e.stop()
		delete(k.entries, id)
	}
}

package den

import (
	"testing"
	"time"

	"itsbed/internal/clock"
	"itsbed/internal/geo"
	"itsbed/internal/its/messages"
	"itsbed/internal/sim"
	"itsbed/internal/units"
)

type denHarness struct {
	kernel *sim.Kernel
	sent   []struct {
		payload []byte
		area    Area
	}
	svc *Service
}

func newDENHarness(t *testing.T) *denHarness {
	t.Helper()
	h := &denHarness{kernel: sim.NewKernel(1)}
	clk := clock.NewNTP(clock.SourceFunc(h.kernel.Now), clock.PerfectNTP(), nil)
	svc, err := New(h.kernel, Config{
		StationID:   1001,
		StationType: units.StationTypeRoadSideUnit,
		Send: func(p []byte, a Area) error {
			h.sent = append(h.sent, struct {
				payload []byte
				area    Area
			}{p, a})
			return nil
		},
		Clock: clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	h.svc = svc
	return h
}

func collisionRequest() EventRequest {
	return EventRequest{
		EventType: messages.EventType{
			CauseCode:    messages.CauseCollisionRisk,
			SubCauseCode: messages.CollisionRiskCrossing,
		},
		Position: geo.CISTERLab,
		Quality:  3,
	}
}

func TestTriggerSendsImmediately(t *testing.T) {
	h := newDENHarness(t)
	id, err := h.svc.Trigger(collisionRequest())
	if err != nil {
		t.Fatal(err)
	}
	if len(h.sent) != 1 {
		t.Fatalf("sent %d", len(h.sent))
	}
	d, err := messages.DecodeDENM(h.sent[0].payload)
	if err != nil {
		t.Fatal(err)
	}
	if d.Management.ActionID != id {
		t.Fatalf("actionID %v != %v", d.Management.ActionID, id)
	}
	if d.Situation == nil || d.Situation.EventType.CauseCode != messages.CauseCollisionRisk {
		t.Fatal("situation container missing or wrong")
	}
	if d.Location == nil || len(d.Location.Traces) != 1 {
		t.Fatal("location container must carry one trace")
	}
	if h.sent[0].area.RadiusMetres != 200 {
		t.Fatalf("default relevance radius %d", h.sent[0].area.RadiusMetres)
	}
}

func TestSequenceNumbersIncrease(t *testing.T) {
	h := newDENHarness(t)
	id1, err := h.svc.Trigger(collisionRequest())
	if err != nil {
		t.Fatal(err)
	}
	id2, err := h.svc.Trigger(collisionRequest())
	if err != nil {
		t.Fatal(err)
	}
	if id2.SequenceNumber != id1.SequenceNumber+1 {
		t.Fatalf("sequence numbers %d then %d", id1.SequenceNumber, id2.SequenceNumber)
	}
}

func TestRepetition(t *testing.T) {
	h := newDENHarness(t)
	req := collisionRequest()
	req.RepetitionInterval = 100 * time.Millisecond
	req.RepetitionDuration = 450 * time.Millisecond
	if _, err := h.svc.Trigger(req); err != nil {
		t.Fatal(err)
	}
	if err := h.kernel.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Initial + repeats at 100..400 ms = 5; the 500 ms tick is past
	// the repetition window.
	if len(h.sent) < 4 || len(h.sent) > 6 {
		t.Fatalf("transmitted %d DENMs, want ~5", len(h.sent))
	}
	// Repetitions are exact copies: reference and detection times stay
	// put, so receivers can suppress them (EN 302 637-3 §8.1.2).
	first, err := messages.DecodeDENM(h.sent[0].payload)
	if err != nil {
		t.Fatal(err)
	}
	last, err := messages.DecodeDENM(h.sent[len(h.sent)-1].payload)
	if err != nil {
		t.Fatal(err)
	}
	if last.Management.ReferenceTime != first.Management.ReferenceTime {
		t.Fatal("reference time must not change on repetition")
	}
	if last.Management.DetectionTime != first.Management.DetectionTime {
		t.Fatal("detection time must not change on repetition")
	}
}

func TestUpdate(t *testing.T) {
	h := newDENHarness(t)
	id, err := h.svc.Trigger(collisionRequest())
	if err != nil {
		t.Fatal(err)
	}
	newType := messages.EventType{
		CauseCode:    messages.CauseDangerousSituation,
		SubCauseCode: messages.DangerousSituationAEBActivated,
	}
	if err := h.svc.Update(id, newType, 5); err != nil {
		t.Fatal(err)
	}
	if len(h.sent) != 2 {
		t.Fatalf("sent %d", len(h.sent))
	}
	d, err := messages.DecodeDENM(h.sent[1].payload)
	if err != nil {
		t.Fatal(err)
	}
	if d.Situation.EventType != newType || d.Situation.InformationQuality != 5 {
		t.Fatal("update content wrong")
	}
	if err := h.svc.Update(messages.ActionID{OriginatingStationID: 9, SequenceNumber: 9}, newType, 1); err == nil {
		t.Fatal("update of unknown action accepted")
	}
}

func TestCancel(t *testing.T) {
	h := newDENHarness(t)
	req := collisionRequest()
	req.RepetitionInterval = 50 * time.Millisecond
	id, err := h.svc.Trigger(req)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.kernel.Run(120 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	before := len(h.sent)
	if err := h.svc.Cancel(id); err != nil {
		t.Fatal(err)
	}
	cancelCount := len(h.sent)
	if cancelCount != before+1 {
		t.Fatal("cancel did not transmit a termination DENM")
	}
	d, err := messages.DecodeDENM(h.sent[cancelCount-1].payload)
	if err != nil {
		t.Fatal(err)
	}
	if !d.IsTermination() {
		t.Fatal("cancellation DENM lacks termination")
	}
	// Repetition stops after cancel.
	if err := h.kernel.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(h.sent) != cancelCount {
		t.Fatal("repetition continued after cancel")
	}
	if err := h.svc.Cancel(id); err == nil {
		t.Fatal("double cancel accepted")
	}
}

func TestValidityCustom(t *testing.T) {
	h := newDENHarness(t)
	req := collisionRequest()
	req.Validity = 90 * time.Second
	if _, err := h.svc.Trigger(req); err != nil {
		t.Fatal(err)
	}
	d, err := messages.DecodeDENM(h.sent[0].payload)
	if err != nil {
		t.Fatal(err)
	}
	if d.Validity() != 90 {
		t.Fatalf("validity %d", d.Validity())
	}
}

func TestEventSpeedInLocation(t *testing.T) {
	h := newDENHarness(t)
	req := collisionRequest()
	req.EventSpeedMS = 1.5
	req.EventHeadingRad = 0
	if _, err := h.svc.Trigger(req); err != nil {
		t.Fatal(err)
	}
	d, err := messages.DecodeDENM(h.sent[0].payload)
	if err != nil {
		t.Fatal(err)
	}
	if d.Location.EventSpeed == nil || d.Location.EventSpeed.MS() != 1.5 {
		t.Fatal("event speed missing")
	}
}

func TestOnTransmitHook(t *testing.T) {
	h := newDENHarness(t)
	var observed []*messages.DENM
	h.svc.OnTransmit = func(d *messages.DENM) { observed = append(observed, d) }
	if _, err := h.svc.Trigger(collisionRequest()); err != nil {
		t.Fatal(err)
	}
	if len(observed) != 1 {
		t.Fatalf("hook fired %d times", len(observed))
	}
}

func TestReceiverDeduplicatesRepetitions(t *testing.T) {
	h := newDENHarness(t)
	var delivered []*messages.DENM
	r := Receiver{Sink: func(d *messages.DENM) { delivered = append(delivered, d) }}
	if _, err := h.svc.Trigger(collisionRequest()); err != nil {
		t.Fatal(err)
	}
	payload := h.sent[0].payload
	r.OnPayload(payload)
	r.OnPayload(payload) // identical repetition
	if len(delivered) != 1 {
		t.Fatalf("delivered %d, want 1", len(delivered))
	}
	if r.Repeated != 1 {
		t.Fatalf("repeated=%d", r.Repeated)
	}
}

func TestReceiverDeliversUpdates(t *testing.T) {
	h := newDENHarness(t)
	var delivered []*messages.DENM
	r := Receiver{Sink: func(d *messages.DENM) { delivered = append(delivered, d) }}
	id, err := h.svc.Trigger(collisionRequest())
	if err != nil {
		t.Fatal(err)
	}
	// Advance virtual time so the update's reference time differs.
	h.kernel.Schedule(10*time.Millisecond, func() {
		newType := messages.EventType{CauseCode: messages.CauseDangerousSituation}
		if err := h.svc.Update(id, newType, 7); err != nil {
			t.Error(err)
		}
	})
	if err := h.kernel.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	for _, s := range h.sent {
		r.OnPayload(s.payload)
	}
	if len(delivered) != 2 {
		t.Fatalf("delivered %d, want 2 (new + update)", len(delivered))
	}
	if r.Malformed != 0 {
		t.Fatal("unexpected malformed count")
	}
	r.OnPayload([]byte{1, 2, 3})
	if r.Malformed != 1 {
		t.Fatal("malformed payload not counted")
	}
}

func TestConfigValidation(t *testing.T) {
	k := sim.NewKernel(1)
	if _, err := New(k, Config{}); err == nil {
		t.Fatal("config without send/clock accepted")
	}
}

package den

import (
	"testing"
	"time"

	"itsbed/internal/its/messages"
	"itsbed/internal/sim"
	"itsbed/internal/units"
)

// kafHarness builds a receiver with keep-alive forwarding into a
// capture sink.
type kafHarness struct {
	kernel    *sim.Kernel
	forwarded [][]byte
	rx        *Receiver
	kaf       *KeepAliveForwarder
}

func newKAFHarness(t *testing.T, interval time.Duration) *kafHarness {
	t.Helper()
	h := &kafHarness{kernel: sim.NewKernel(1)}
	h.kaf = NewKeepAliveForwarder(h.kernel, func(p []byte, _ Area) error {
		cp := make([]byte, len(p))
		copy(cp, p)
		h.forwarded = append(h.forwarded, cp)
		return nil
	}, interval)
	h.rx = &Receiver{KAF: h.kaf}
	return h
}

func kafDENM(t *testing.T, seq uint16, validitySec uint32, terminated bool) []byte {
	t.Helper()
	d := messages.NewDENM(1001)
	d.Management = messages.ManagementContainer{
		ActionID:         messages.ActionID{OriginatingStationID: 1001, SequenceNumber: seq},
		DetectionTime:    1,
		ReferenceTime:    1,
		EventPosition:    messages.ReferencePosition{AltitudeValue: messages.AltitudeUnavailable},
		ValidityDuration: &validitySec,
		StationType:      units.StationTypeRoadSideUnit,
	}
	if terminated {
		term := messages.TerminationIsCancellation
		d.Management.Termination = &term
	}
	payload, err := d.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return payload
}

func TestKAFForwardsAfterSilence(t *testing.T) {
	h := newKAFHarness(t, 200*time.Millisecond)
	h.rx.OnPayload(kafDENM(t, 1, 10, false))
	if h.kaf.Active() != 1 {
		t.Fatal("event not under management")
	}
	if err := h.kernel.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	// One forward every 200 ms of silence: ~5 in a second.
	if len(h.forwarded) < 4 || len(h.forwarded) > 6 {
		t.Fatalf("forwarded %d times, want ~5", len(h.forwarded))
	}
	// The forwarded bytes are the original payload, bit for bit.
	got, err := messages.DecodeDENM(h.forwarded[0])
	if err != nil {
		t.Fatal(err)
	}
	if got.Management.ActionID.SequenceNumber != 1 {
		t.Fatal("forwarded payload corrupted")
	}
}

func TestKAFBacksOffWhileHearingTheEvent(t *testing.T) {
	h := newKAFHarness(t, 200*time.Millisecond)
	payload := kafDENM(t, 1, 10, false)
	h.rx.OnPayload(payload)
	// Keep re-hearing the event every 100 ms: the silence timer keeps
	// re-arming and the station never forwards.
	tk := h.kernel.Every(100*time.Millisecond, 100*time.Millisecond, func() {
		h.rx.OnPayload(payload)
	})
	if err := h.kernel.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	tk.Stop()
	if len(h.forwarded) != 0 {
		t.Fatalf("forwarded %d times while the source was alive", len(h.forwarded))
	}
}

func TestKAFStopsAtValidityExpiry(t *testing.T) {
	h := newKAFHarness(t, 200*time.Millisecond)
	h.rx.OnPayload(kafDENM(t, 1, 1, false)) // 1 s validity
	if err := h.kernel.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Forwards only during the first second (~4), then expires.
	if len(h.forwarded) > 5 {
		t.Fatalf("forwarded %d times past validity", len(h.forwarded))
	}
	if h.kaf.Active() != 0 {
		t.Fatal("expired event still managed")
	}
}

func TestKAFTerminationCancels(t *testing.T) {
	h := newKAFHarness(t, 200*time.Millisecond)
	h.rx.OnPayload(kafDENM(t, 1, 10, false))
	h.kernel.Schedule(300*time.Millisecond, func() {
		h.rx.OnPayload(kafDENM(t, 1, 10, true))
	})
	if err := h.kernel.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	// At most the one forward before the cancellation arrived.
	if len(h.forwarded) > 1 {
		t.Fatalf("forwarded %d times after termination", len(h.forwarded))
	}
	if h.kaf.Active() != 0 {
		t.Fatal("terminated event still managed")
	}
}

func TestKAFHonoursTransmissionInterval(t *testing.T) {
	h := newKAFHarness(t, time.Second) // default would be slow
	d := messages.NewDENM(1001)
	validity := uint32(10)
	ti := uint16(100) // the DENM asks for 100 ms
	d.Management = messages.ManagementContainer{
		ActionID:             messages.ActionID{OriginatingStationID: 1001, SequenceNumber: 2},
		DetectionTime:        1,
		ReferenceTime:        1,
		EventPosition:        messages.ReferencePosition{AltitudeValue: messages.AltitudeUnavailable},
		ValidityDuration:     &validity,
		TransmissionInterval: &ti,
		StationType:          units.StationTypeRoadSideUnit,
	}
	payload, err := d.Encode()
	if err != nil {
		t.Fatal(err)
	}
	h.rx.OnPayload(payload)
	if err := h.kernel.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(h.forwarded) < 8 {
		t.Fatalf("forwarded %d times; the 100 ms transmissionInterval was ignored", len(h.forwarded))
	}
}

func TestKAFStop(t *testing.T) {
	h := newKAFHarness(t, 100*time.Millisecond)
	h.rx.OnPayload(kafDENM(t, 1, 10, false))
	h.kaf.Stop()
	if err := h.kernel.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(h.forwarded) != 0 {
		t.Fatal("forwarded after Stop")
	}
}

func TestKAFRepetitionDoesNotExtendValidity(t *testing.T) {
	// Repetitions of the same event version (same referenceTime) re-arm
	// the silence timer but must not push the validity expiry forward:
	// keep-alive forwarding would otherwise sustain a dead event
	// indefinitely — each forwarder's repetition refreshing the next's.
	h := newKAFHarness(t, 200*time.Millisecond)
	h.rx.OnPayload(kafDENM(t, 1, 1, false)) // 1 s validity from first hear
	// Keep repeating the identical DENM well past the original expiry.
	rep := h.kernel.Every(100*time.Millisecond, 100*time.Millisecond, func() {
		if h.kernel.Now() < 3*time.Second {
			h.rx.OnPayload(kafDENM(t, 1, 1, false))
		}
	})
	defer rep.Stop()
	if err := h.kernel.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	// The 100 ms repetitions keep the silence timer backed off, so no
	// forwards at all; the crucial check: the entry dies at the original
	// detection+validity instead of three seconds later.
	if h.kaf.Active() != 0 {
		t.Fatal("repetitions extended the event's validity; entry still managed")
	}
	if len(h.forwarded) != 0 {
		t.Fatalf("forwarded %d times while the event was continuously heard", len(h.forwarded))
	}
}

func TestKAFUpdateReanchorsValidity(t *testing.T) {
	// An update (advanced referenceTime) restarts the validity window,
	// so forwarding continues past the original expiry.
	h := newKAFHarness(t, 200*time.Millisecond)
	h.rx.OnPayload(kafDENM(t, 1, 1, false))
	h.kernel.Schedule(900*time.Millisecond, func() {
		upd := messages.NewDENM(1001)
		validity := uint32(1)
		upd.Management = messages.ManagementContainer{
			ActionID:         messages.ActionID{OriginatingStationID: 1001, SequenceNumber: 1},
			DetectionTime:    2,
			ReferenceTime:    2, // advanced: a genuine update
			EventPosition:    messages.ReferencePosition{AltitudeValue: messages.AltitudeUnavailable},
			ValidityDuration: &validity,
			StationType:      units.StationTypeRoadSideUnit,
		}
		payload, err := upd.Encode()
		if err != nil {
			t.Error(err)
			return
		}
		h.rx.OnPayload(payload)
	})
	if err := h.kernel.Run(1500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// At 1.5 s the original window (0..1 s) is over but the update's
	// (0.9..1.9 s) is not: the entry must still be managed.
	if h.kaf.Active() != 1 {
		t.Fatalf("active = %d, want 1: update did not re-anchor validity", h.kaf.Active())
	}
}

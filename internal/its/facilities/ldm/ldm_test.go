package ldm

import (
	"testing"
	"time"

	"itsbed/internal/geo"
	"itsbed/internal/its/messages"
	"itsbed/internal/units"
)

func newTestMap(t *testing.T) (*Map, *time.Duration) {
	t.Helper()
	frame, err := geo.NewFrame(geo.CISTERLab)
	if err != nil {
		t.Fatal(err)
	}
	now := new(time.Duration)
	m := New(Config{
		Frame: frame,
		Now:   func() time.Duration { return *now },
	})
	return m, now
}

func testCAM(station units.StationID, pos geo.LatLon, speed float64) *messages.CAM {
	cam := messages.NewCAM(station, 0)
	cam.Basic = messages.BasicContainer{
		StationType: units.StationTypePassengerCar,
		Position: messages.ReferencePosition{
			Latitude:      units.LatitudeFromDegrees(pos.Lat),
			Longitude:     units.LongitudeFromDegrees(pos.Lon),
			AltitudeValue: messages.AltitudeUnavailable,
		},
	}
	cam.HighFrequency.Speed = units.SpeedFromMS(speed)
	return cam
}

func testDENM(station units.StationID, seq uint16, validity uint32) *messages.DENM {
	d := messages.NewDENM(station)
	d.Management = messages.ManagementContainer{
		ActionID:         messages.ActionID{OriginatingStationID: station, SequenceNumber: seq},
		DetectionTime:    1,
		ReferenceTime:    1,
		EventPosition:    messages.ReferencePosition{AltitudeValue: messages.AltitudeUnavailable},
		ValidityDuration: &validity,
		StationType:      units.StationTypeRoadSideUnit,
	}
	d.Situation = &messages.SituationContainer{
		EventType: messages.EventType{CauseCode: messages.CauseCollisionRisk},
	}
	return d
}

func TestIngestCAMCreatesObject(t *testing.T) {
	m, _ := newTestMap(t)
	m.IngestCAM(testCAM(2001, geo.CISTERLab, 1.5))
	o, ok := m.Object(2001)
	if !ok {
		t.Fatal("object missing")
	}
	if o.Source != SourceCAM || o.SpeedMS != 1.5 {
		t.Fatalf("object %+v", o)
	}
	if o.Position.DistanceTo(geo.Point{}) > 0.01 {
		t.Fatalf("position %v, want near frame origin", o.Position)
	}
}

func TestCAMUpdatesExistingObject(t *testing.T) {
	m, _ := newTestMap(t)
	m.IngestCAM(testCAM(2001, geo.CISTERLab, 1.0))
	m.IngestCAM(testCAM(2001, geo.CISTERLab, 2.0))
	o, _ := m.Object(2001)
	if o.SpeedMS != 2.0 {
		t.Fatal("object not updated")
	}
	if objs, _ := m.Counts(); objs != 1 {
		t.Fatalf("duplicate objects: %d", objs)
	}
}

func TestObjectExpiry(t *testing.T) {
	m, now := newTestMap(t)
	m.IngestCAM(testCAM(2001, geo.CISTERLab, 1.0))
	*now = 2 * time.Second
	if _, ok := m.Object(2001); ok {
		t.Fatal("stale object returned")
	}
	m.GC()
	if objs, _ := m.Counts(); objs != 0 {
		t.Fatal("GC left stale object")
	}
}

func TestSensedObjects(t *testing.T) {
	m, _ := newTestMap(t)
	m.IngestSensedObject("stop sign", units.StationTypeUnknown, geo.Point{X: 1, Y: 2}, 1.4, 0)
	o, ok := m.SensedObject("stop sign")
	if !ok {
		t.Fatal("sensed object missing")
	}
	if o.Source != SourceLocalSensor || o.Classification != "stop sign" {
		t.Fatalf("object %+v", o)
	}
	// Sensor objects and CAM objects coexist under different keys.
	m.IngestCAM(testCAM(2001, geo.CISTERLab, 1.0))
	if objs, _ := m.Counts(); objs != 2 {
		t.Fatalf("objects=%d", objs)
	}
}

func TestObjectsWithinSortsByDistance(t *testing.T) {
	m, _ := newTestMap(t)
	m.IngestSensedObject("far", units.StationTypeUnknown, geo.Point{X: 50}, 0, 0)
	m.IngestSensedObject("near", units.StationTypeUnknown, geo.Point{X: 5}, 0, 0)
	m.IngestSensedObject("out", units.StationTypeUnknown, geo.Point{X: 500}, 0, 0)
	got := m.ObjectsWithin(geo.Point{}, 100)
	if len(got) != 2 {
		t.Fatalf("got %d objects", len(got))
	}
	if got[0].Classification != "near" || got[1].Classification != "far" {
		t.Fatalf("order: %s then %s", got[0].Classification, got[1].Classification)
	}
}

func TestIngestDENMEventLifecycle(t *testing.T) {
	m, now := newTestMap(t)
	m.IngestDENM(testDENM(1001, 1, 60))
	evs := m.ActiveEvents()
	if len(evs) != 1 {
		t.Fatalf("active events %d", len(evs))
	}
	if evs[0].EventType.CauseCode != messages.CauseCollisionRisk {
		t.Fatal("event type")
	}
	// Expiry.
	*now = 61 * time.Second
	if len(m.ActiveEvents()) != 0 {
		t.Fatal("expired event still active")
	}
	m.GC()
	if _, evCount := m.Counts(); evCount != 0 {
		t.Fatal("GC left expired events")
	}
}

func TestDENMTerminationDeactivates(t *testing.T) {
	m, _ := newTestMap(t)
	m.IngestDENM(testDENM(1001, 1, 600))
	cancel := testDENM(1001, 1, 600)
	term := messages.TerminationIsCancellation
	cancel.Management.Termination = &term
	m.IngestDENM(cancel)
	if len(m.ActiveEvents()) != 0 {
		t.Fatal("terminated event still active")
	}
	ev, ok := m.Event(messages.ActionID{OriginatingStationID: 1001, SequenceNumber: 1})
	if !ok || !ev.Terminated {
		t.Fatal("termination not recorded")
	}
}

func TestActiveEventsDeterministicOrder(t *testing.T) {
	m, _ := newTestMap(t)
	m.IngestDENM(testDENM(1002, 5, 600))
	m.IngestDENM(testDENM(1001, 9, 600))
	m.IngestDENM(testDENM(1001, 2, 600))
	evs := m.ActiveEvents()
	if len(evs) != 3 {
		t.Fatalf("events %d", len(evs))
	}
	if evs[0].ActionID.OriginatingStationID != 1001 || evs[0].ActionID.SequenceNumber != 2 {
		t.Fatalf("order wrong: %v first", evs[0].ActionID)
	}
	if evs[2].ActionID.OriginatingStationID != 1002 {
		t.Fatalf("order wrong: %v last", evs[2].ActionID)
	}
}

func TestDENMWithoutSituationKeepsPreviousType(t *testing.T) {
	m, _ := newTestMap(t)
	m.IngestDENM(testDENM(1001, 1, 600))
	bare := testDENM(1001, 1, 600)
	bare.Situation = nil
	m.IngestDENM(bare)
	ev, _ := m.Event(messages.ActionID{OriginatingStationID: 1001, SequenceNumber: 1})
	if ev.EventType.CauseCode != messages.CauseCollisionRisk {
		t.Fatal("event type lost on situationless update")
	}
}

func TestDENMRepetitionDoesNotExtendExpiry(t *testing.T) {
	// EN 302 637-3: validityDuration runs from the event's detection.
	// Repetitions (same referenceTime) refresh content but must not
	// push the expiry forward — that would keep a 60 s event alive
	// forever under 1 Hz repetition.
	m, now := newTestMap(t)
	m.IngestDENM(testDENM(1001, 1, 60))
	for s := time.Duration(10); s <= 50; s += 10 {
		*now = s * time.Second
		m.IngestDENM(testDENM(1001, 1, 60)) // identical repetition
	}
	*now = 59 * time.Second
	if len(m.ActiveEvents()) != 1 {
		t.Fatal("event should still be active just before the original expiry")
	}
	*now = 61 * time.Second
	if len(m.ActiveEvents()) != 0 {
		t.Fatal("repetitions extended the event's lifetime past detection+validity")
	}
}

func TestDENMUpdateReanchorsExpiry(t *testing.T) {
	// An update DENM (advanced referenceTime) restarts the validity
	// interval: the originator re-assessed the event.
	m, now := newTestMap(t)
	m.IngestDENM(testDENM(1001, 1, 60))
	*now = 50 * time.Second
	upd := testDENM(1001, 1, 60)
	upd.Management.ReferenceTime = 2
	m.IngestDENM(upd)
	*now = 100 * time.Second // < 50 + 60
	if len(m.ActiveEvents()) != 1 {
		t.Fatal("updated event expired too early")
	}
	*now = 111 * time.Second
	if len(m.ActiveEvents()) != 0 {
		t.Fatal("updated event outlived its re-anchored validity")
	}
}

func TestDENMStaleReferenceTimeIgnored(t *testing.T) {
	m, now := newTestMap(t)
	first := testDENM(1001, 1, 60)
	first.Management.ReferenceTime = 5
	m.IngestDENM(first)
	// A late copy of an older version must not roll the event back.
	*now = 10 * time.Second
	stale := testDENM(1001, 1, 600)
	stale.Management.ReferenceTime = 2
	stale.Situation.EventType.CauseCode = messages.CauseDangerousSituation
	m.IngestDENM(stale)
	ev, ok := m.Event(messages.ActionID{OriginatingStationID: 1001, SequenceNumber: 1})
	if !ok {
		t.Fatal("event lost")
	}
	if ev.EventType.CauseCode != messages.CauseCollisionRisk {
		t.Fatal("stale copy overwrote the event type")
	}
	*now = 61 * time.Second
	if len(m.ActiveEvents()) != 0 {
		t.Fatal("stale copy's longer validity extended the event")
	}
}

package ldm

import (
	"testing"
	"time"

	"itsbed/internal/geo"
	"itsbed/internal/its/messages"
	"itsbed/internal/units"
)

func TestIngestCPMObjectCreatesAndRefreshes(t *testing.T) {
	m, now := newTestMap(t)
	if !m.IngestCPMObject(901, 7, units.StationTypePedestrian, "person", geo.Point{X: 1, Y: 2}, 0.5, 0, 0) {
		t.Fatal("first fusion rejected")
	}
	*now = 100 * time.Millisecond
	if !m.IngestCPMObject(901, 7, units.StationTypePedestrian, "person", geo.Point{X: 1.1, Y: 2}, 0.6, 0, 100*time.Millisecond) {
		t.Fatal("newer measurement rejected")
	}
	objs := m.ObjectsWithin(geo.Point{}, 10)
	if len(objs) != 1 {
		t.Fatalf("objects %d, want 1 (refresh must not duplicate)", len(objs))
	}
	o := objs[0]
	if o.Source != SourceCPM || o.Origin != 901 || o.ObjectID != 7 {
		t.Fatalf("fused object %+v", o)
	}
	if o.SpeedMS != 0.6 || o.Position.X != 1.1 {
		t.Fatalf("refresh did not apply: %+v", o)
	}
}

func TestIngestCPMStaleMeasurementIgnored(t *testing.T) {
	m, now := newTestMap(t)
	*now = 500 * time.Millisecond
	if !m.IngestCPMObject(901, 7, units.StationTypePedestrian, "person", geo.Point{X: 2}, 0.5, 0, 400*time.Millisecond) {
		t.Fatal("first fusion rejected")
	}
	// A delayed copy carrying an older measurement must not roll the
	// track back.
	if m.IngestCPMObject(901, 7, units.StationTypePedestrian, "person", geo.Point{X: 9}, 9, 0, 300*time.Millisecond) {
		t.Fatal("stale remote measurement accepted")
	}
	// Equal measurement time is a duplicate, not an update.
	if m.IngestCPMObject(901, 7, units.StationTypePedestrian, "person", geo.Point{X: 9}, 9, 0, 400*time.Millisecond) {
		t.Fatal("duplicate remote measurement accepted")
	}
	o := m.ObjectsWithin(geo.Point{}, 100)[0]
	if o.Position.X != 2 || o.SpeedMS != 0.5 {
		t.Fatalf("stale copy overwrote the track: %+v", o)
	}
}

func TestCPMFusedObjectsAreSecondHand(t *testing.T) {
	// Ownership: LocalPerception feeds this station's own CPMs, so it
	// must contain only SourceLocalSensor objects — never CAM tracks or
	// objects fused from other stations' CPMs.
	m, _ := newTestMap(t)
	m.IngestSensedObject("person", units.StationTypePedestrian, geo.Point{X: 1}, 0, 0)
	m.IngestSensedObject("motorbike", units.StationTypeMotorcycle, geo.Point{X: 2}, 1, 0)
	m.IngestCPMObject(901, 3, units.StationTypePedestrian, "person", geo.Point{X: 3}, 0, 0, 0)
	m.IngestCAM(testCAM(2001, geo.CISTERLab, 1.0))

	own := m.LocalPerception()
	if len(own) != 2 {
		t.Fatalf("local perception %d objects, want 2 (second-hand leaked)", len(own))
	}
	for _, o := range own {
		if o.Source != SourceLocalSensor {
			t.Fatalf("non-sensor object in local perception: %+v", o)
		}
	}
	// Ordered by wire object ID, which IngestSensedObject assigns in
	// first-seen order.
	if own[0].Classification != "person" || own[1].Classification != "motorbike" {
		t.Fatalf("order: %s then %s", own[0].Classification, own[1].Classification)
	}
	if own[0].ObjectID != 0 || own[1].ObjectID != 1 {
		t.Fatalf("object IDs %d, %d", own[0].ObjectID, own[1].ObjectID)
	}
}

func TestCPMKeyingSeparatesOriginsAndCAMTracks(t *testing.T) {
	m, _ := newTestMap(t)
	// Station 901's CAM track and its CPM-shared object 0 coexist, as
	// do two origins sharing the same object ID.
	m.IngestCAM(testCAM(901, geo.CISTERLab, 1.0))
	m.IngestCPMObject(901, 0, units.StationTypePedestrian, "person", geo.Point{X: 1}, 0, 0, 0)
	m.IngestCPMObject(902, 0, units.StationTypePedestrian, "person", geo.Point{X: 2}, 0, 0, 0)
	if objs, _ := m.Counts(); objs != 3 {
		t.Fatalf("objects %d, want 3 (key collision)", objs)
	}
}

func TestCPMFreshnessFollowsMeasurementTime(t *testing.T) {
	// Updated is the measurement time, not the arrival time: an object
	// whose remote measurement is already old expires sooner than one
	// measured just now.
	m, now := newTestMap(t)
	*now = time.Second
	m.IngestCPMObject(901, 1, units.StationTypePedestrian, "old", geo.Point{X: 1}, 0, 0, 100*time.Millisecond)
	m.IngestCPMObject(901, 2, units.StationTypePedestrian, "new", geo.Point{X: 2}, 0, 0, time.Second)
	*now = 1300 * time.Millisecond
	objs := m.ObjectsWithin(geo.Point{}, 100)
	if len(objs) != 1 || objs[0].Classification != "new" {
		t.Fatalf("freshness by measurement age broken: %+v", objs)
	}
}

func TestCPMFutureMeasurementClamped(t *testing.T) {
	m, now := newTestMap(t)
	*now = time.Second
	m.IngestCPMObject(901, 1, units.StationTypePedestrian, "person", geo.Point{X: 1}, 0, 0, time.Hour)
	o := m.ObjectsWithin(geo.Point{}, 100)[0]
	if o.Updated != time.Second {
		t.Fatalf("future measurement not clamped: Updated=%v", o.Updated)
	}
}

func TestClearDropsFusedState(t *testing.T) {
	m, _ := newTestMap(t)
	m.IngestSensedObject("person", units.StationTypePedestrian, geo.Point{X: 1}, 0, 0)
	m.IngestCPMObject(901, 5, units.StationTypePedestrian, "person", geo.Point{X: 2}, 0, 0, 0)
	m.Clear()
	if objs, evs := m.Counts(); objs != 0 || evs != 0 {
		t.Fatalf("Clear left %d objects, %d events", objs, evs)
	}
	if len(m.ObjectsWithin(geo.Point{}, 1000)) != 0 {
		t.Fatal("fused state survived Clear")
	}
	// Object IDs restart from zero, like a rebooted perception process.
	m.IngestSensedObject("person", units.StationTypePedestrian, geo.Point{X: 1}, 0, 0)
	if own := m.LocalPerception(); len(own) != 1 || own[0].ObjectID != 0 {
		t.Fatalf("object ID counter not reset: %+v", own)
	}
}

func TestObjectsWithinTieBreakDeterministic(t *testing.T) {
	// Two objects at the same distance must come back in a stable order
	// regardless of map-iteration order: build the map many times and
	// compare.
	var first []Object
	for trial := 0; trial < 32; trial++ {
		m, _ := newTestMap(t)
		m.IngestSensedObject("person", units.StationTypePedestrian, geo.Point{X: 3}, 0, 0)
		m.IngestCPMObject(901, 0, units.StationTypePedestrian, "person", geo.Point{X: 3}, 0, 0, 0)
		m.IngestCPMObject(902, 0, units.StationTypePedestrian, "person", geo.Point{X: -3}, 0, 0, 0)
		got := m.ObjectsWithin(geo.Point{}, 10)
		if len(got) != 3 {
			t.Fatalf("objects %d", len(got))
		}
		if trial == 0 {
			first = got
			continue
		}
		for i := range got {
			if got[i] != first[i] {
				t.Fatalf("trial %d: order differs at %d: %+v vs %+v", trial, i, got[i], first[i])
			}
		}
	}
}

// TestDENMRepetitionRefreshesContentWithoutExtendingExpiry pins the
// equal-referenceTime semantics precisely: a repetition (same
// referenceTime) refreshes the event's position and type but leaves
// the expiry anchored at the original detection.
func TestDENMRepetitionRefreshesContentWithoutExtendingExpiry(t *testing.T) {
	m, now := newTestMap(t)
	m.IngestDENM(testDENM(1001, 1, 60))
	orig, _ := m.Event(messages.ActionID{OriginatingStationID: 1001, SequenceNumber: 1})
	*now = 30 * time.Second
	rep := testDENM(1001, 1, 60)
	rep.Management.EventPosition.Latitude += 1000 // ~11 m north
	rep.Situation.EventType.SubCauseCode = 2
	m.IngestDENM(rep)
	ev, ok := m.Event(messages.ActionID{OriginatingStationID: 1001, SequenceNumber: 1})
	if !ok {
		t.Fatal("event lost")
	}
	if ev.Expires != orig.Expires {
		t.Fatalf("repetition moved expiry %v → %v", orig.Expires, ev.Expires)
	}
	if ev.EventType.SubCauseCode != 2 {
		t.Fatal("repetition did not refresh the event type")
	}
	if ev.Position == orig.Position {
		t.Fatal("repetition did not refresh the event position")
	}
	if ev.Detection != orig.Detection {
		t.Fatal("repetition moved the detection time")
	}
}

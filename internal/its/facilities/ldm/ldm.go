// Package ldm implements the Local Dynamic Map facility (ETSI EN 302
// 895): a station-local store of dynamic road objects fed by received
// CAMs, active DENM events, and locally sensed objects (the road-side
// camera). The hazard advertisement service consults the LDM to decide
// whether a detected road user conflicts with a tracked vehicle.
package ldm

import (
	"sort"
	"time"

	"itsbed/internal/geo"
	"itsbed/internal/its/messages"
	"itsbed/internal/units"
)

// ObjectSource says how an LDM object became known.
type ObjectSource int

// Object sources.
const (
	SourceCAM ObjectSource = iota + 1
	SourceLocalSensor
)

// Object is one dynamic road user tracked in the map.
type Object struct {
	StationID   units.StationID // zero for camera-only objects
	StationType units.StationType
	Source      ObjectSource
	Position    geo.Point
	SpeedMS     float64
	HeadingRad  float64
	// Classification is the sensor label for locally sensed objects
	// (e.g. "stop sign", "motorbike").
	Classification string
	// Updated is the virtual time of the last refresh.
	Updated time.Duration
}

// Event is one active DENM event.
type Event struct {
	ActionID  messages.ActionID
	EventType messages.EventType
	Position  geo.Point
	Detection time.Duration // local arrival/detection time
	Expires   time.Duration
	// Terminated marks cancelled events retained until expiry.
	Terminated bool
	// lastRef is the highest ReferenceTime seen for the ActionID; only
	// messages advancing it are genuine updates (EN 302 637-3).
	lastRef uint64
}

// Config parameterises the LDM.
type Config struct {
	// Frame converts message geodetic coordinates to the local plane.
	Frame *geo.Frame
	// Now yields current virtual time.
	Now func() time.Duration
	// ObjectLifetime after which unrefreshed objects vanish; zero
	// selects 1.1 s (just above the maximum CAM period).
	ObjectLifetime time.Duration
}

// Map is the local dynamic map. Not safe for concurrent use; in the
// simulation every access happens on kernel events, and the daemons
// wrap it in their own lock.
type Map struct {
	cfg     Config
	objects map[objectKey]*Object
	events  map[messages.ActionID]*Event
}

type objectKey struct {
	station units.StationID
	label   string
}

// New creates an empty LDM.
func New(cfg Config) *Map {
	if cfg.ObjectLifetime <= 0 {
		cfg.ObjectLifetime = 1100 * time.Millisecond
	}
	return &Map{
		cfg:     cfg,
		objects: make(map[objectKey]*Object),
		events:  make(map[messages.ActionID]*Event),
	}
}

// IngestCAM updates the map from a received CAM.
func (m *Map) IngestCAM(c *messages.CAM) {
	pos := m.cfg.Frame.ToLocal(geo.LatLon{
		Lat: c.Basic.Position.Latitude.Degrees(),
		Lon: c.Basic.Position.Longitude.Degrees(),
	})
	k := objectKey{station: c.Header.StationID}
	o, ok := m.objects[k]
	if !ok {
		o = &Object{}
		m.objects[k] = o
	}
	o.StationID = c.Header.StationID
	o.StationType = c.Basic.StationType
	o.Source = SourceCAM
	o.Position = pos
	o.SpeedMS = c.HighFrequency.Speed.MS()
	o.HeadingRad = c.HighFrequency.Heading.Radians()
	o.Updated = m.cfg.Now()
}

// IngestSensedObject records a locally sensed object (camera
// detection). Objects are keyed by classification label, matching the
// testbed's single-region-of-interest tracking.
func (m *Map) IngestSensedObject(label string, st units.StationType, pos geo.Point, speedMS, headingRad float64) {
	k := objectKey{label: label}
	o, ok := m.objects[k]
	if !ok {
		o = &Object{}
		m.objects[k] = o
	}
	o.StationType = st
	o.Source = SourceLocalSensor
	o.Position = pos
	o.SpeedMS = speedMS
	o.HeadingRad = headingRad
	o.Classification = label
	o.Updated = m.cfg.Now()
}

// IngestDENM records or updates an event from a received or locally
// originated DENM.
func (m *Map) IngestDENM(d *messages.DENM) {
	now := m.cfg.Now()
	pos := m.cfg.Frame.ToLocal(geo.LatLon{
		Lat: d.Management.EventPosition.Latitude.Degrees(),
		Lon: d.Management.EventPosition.Longitude.Degrees(),
	})
	ev, ok := m.events[d.Management.ActionID]
	if !ok {
		ev = &Event{ActionID: d.Management.ActionID, Detection: now}
		m.events[d.Management.ActionID] = ev
		// Anchor expiry to the event's detection: validityDuration runs
		// from detectionTime (EN 302 637-3), which the first reception
		// approximates locally. Re-anchoring on every copy would let
		// DEN repetitions extend the event's lifetime indefinitely.
		ev.Expires = now + time.Duration(d.Validity())*time.Second
		ev.lastRef = d.Management.ReferenceTime
	} else if d.Management.ReferenceTime < ev.lastRef {
		return // stale copy of an older version
	} else if d.Management.ReferenceTime > ev.lastRef {
		// A genuine update (or termination) carries a new referenceTime
		// and restarts the validity interval from its own detection.
		ev.Expires = now + time.Duration(d.Validity())*time.Second
		ev.lastRef = d.Management.ReferenceTime
		ev.Terminated = d.IsTermination()
	}
	if d.Situation != nil {
		ev.EventType = d.Situation.EventType
	}
	ev.Position = pos
	if d.IsTermination() {
		ev.Terminated = true
	}
}

// Object returns the tracked object for a station ID.
func (m *Map) Object(id units.StationID) (Object, bool) {
	o, ok := m.objects[objectKey{station: id}]
	if !ok || m.stale(o) {
		return Object{}, false
	}
	return *o, true
}

// SensedObject returns the tracked camera object with the given label.
func (m *Map) SensedObject(label string) (Object, bool) {
	o, ok := m.objects[objectKey{label: label}]
	if !ok || m.stale(o) {
		return Object{}, false
	}
	return *o, true
}

func (m *Map) stale(o *Object) bool {
	return m.cfg.Now()-o.Updated > m.cfg.ObjectLifetime
}

// ObjectsWithin returns fresh objects within radius of centre, nearest
// first. The slice is freshly allocated.
func (m *Map) ObjectsWithin(centre geo.Point, radius float64) []Object {
	var out []Object
	for _, o := range m.objects {
		if m.stale(o) {
			continue
		}
		if o.Position.DistanceTo(centre) <= radius {
			out = append(out, *o)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Position.DistanceTo(centre) < out[j].Position.DistanceTo(centre)
	})
	return out
}

// ActiveEvents returns non-terminated, unexpired events. The slice is
// freshly allocated, ordered by action ID for determinism.
func (m *Map) ActiveEvents() []Event {
	now := m.cfg.Now()
	var out []Event
	for _, ev := range m.events {
		if ev.Terminated || now >= ev.Expires {
			continue
		}
		out = append(out, *ev)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].ActionID, out[j].ActionID
		if a.OriginatingStationID != b.OriginatingStationID {
			return a.OriginatingStationID < b.OriginatingStationID
		}
		return a.SequenceNumber < b.SequenceNumber
	})
	return out
}

// Event returns the event with the given action ID if still stored.
func (m *Map) Event(id messages.ActionID) (Event, bool) {
	ev, ok := m.events[id]
	if !ok {
		return Event{}, false
	}
	return *ev, true
}

// GC removes stale objects and expired events. Call periodically.
func (m *Map) GC() {
	now := m.cfg.Now()
	for k, o := range m.objects {
		if now-o.Updated > m.cfg.ObjectLifetime {
			delete(m.objects, k)
		}
	}
	for id, ev := range m.events {
		if now >= ev.Expires {
			delete(m.events, id)
		}
	}
}

// Clear drops every stored object and event — the state loss of a
// station process restart. The map stays usable afterwards.
func (m *Map) Clear() {
	m.objects = make(map[objectKey]*Object)
	m.events = make(map[messages.ActionID]*Event)
}

// Counts reports the number of stored objects and events (including
// stale entries not yet collected), for diagnostics.
func (m *Map) Counts() (objects, events int) {
	return len(m.objects), len(m.events)
}

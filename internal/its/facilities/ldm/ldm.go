// Package ldm implements the Local Dynamic Map facility (ETSI EN 302
// 895): a station-local store of dynamic road objects fed by received
// CAMs, active DENM events, and locally sensed objects (the road-side
// camera). The hazard advertisement service consults the LDM to decide
// whether a detected road user conflicts with a tracked vehicle.
package ldm

import (
	"sort"
	"time"

	"itsbed/internal/flight"
	"itsbed/internal/geo"
	"itsbed/internal/its/messages"
	"itsbed/internal/units"
)

// ObjectSource says how an LDM object became known.
type ObjectSource int

// Object sources.
const (
	SourceCAM ObjectSource = iota + 1
	SourceLocalSensor
	// SourceCPM marks objects fused from another station's Collective
	// Perception Messages — second-hand knowledge this station must
	// never re-share in its own CPMs.
	SourceCPM
)

// Object is one dynamic road user tracked in the map.
type Object struct {
	StationID   units.StationID // zero for camera-only objects
	StationType units.StationType
	Source      ObjectSource
	Position    geo.Point
	SpeedMS     float64
	HeadingRad  float64
	// Classification is the sensor label for locally sensed objects
	// (e.g. "stop sign", "motorbike").
	Classification string
	// ObjectID is the sensor-assigned identifier carried on the CPM
	// wire: stable per tracked object on the originating station, and
	// part of the fusion key on receivers.
	ObjectID uint16
	// Origin is the station whose sensors perceived the object — this
	// station's own ID is never set here; only SourceCPM objects carry
	// the remote perceiver's ID.
	Origin units.StationID
	// Updated is the virtual time of the last refresh. For SourceCPM
	// objects it is the local estimate of the remote measurement time,
	// so freshness reflects the data's age, not its arrival.
	Updated time.Duration
}

// Event is one active DENM event.
type Event struct {
	ActionID  messages.ActionID
	EventType messages.EventType
	Position  geo.Point
	Detection time.Duration // local arrival/detection time
	Expires   time.Duration
	// Terminated marks cancelled events retained until expiry.
	Terminated bool
	// lastRef is the highest ReferenceTime seen for the ActionID; only
	// messages advancing it are genuine updates (EN 302 637-3).
	lastRef uint64
}

// Config parameterises the LDM.
type Config struct {
	// Frame converts message geodetic coordinates to the local plane.
	Frame *geo.Frame
	// Now yields current virtual time.
	Now func() time.Duration
	// ObjectLifetime after which unrefreshed objects vanish; zero
	// selects 1.1 s (just above the maximum CAM period).
	ObjectLifetime time.Duration
	// Flight, when enabled, records ldm.ingest/ldm.fuse events per
	// ingestion and one aggregate ldm.expire event per GC sweep that
	// removed anything.
	Flight flight.Hook
}

// Map is the local dynamic map. Not safe for concurrent use; in the
// simulation every access happens on kernel events, and the daemons
// wrap it in their own lock.
type Map struct {
	cfg     Config
	objects map[objectKey]*Object
	events  map[messages.ActionID]*Event
	// nextObjID hands out wire object IDs for locally sensed objects.
	nextObjID uint16
}

type objectKey struct {
	station units.StationID
	label   string
	// remote discriminates CPM-fused entries: they are keyed by
	// (originating station, wire object ID) so the same origin can
	// share many objects and two origins can track the same road user
	// independently without colliding with CAM entries.
	remote bool
	objID  uint16
}

// New creates an empty LDM.
func New(cfg Config) *Map {
	if cfg.ObjectLifetime <= 0 {
		cfg.ObjectLifetime = 1100 * time.Millisecond
	}
	return &Map{
		cfg:     cfg,
		objects: make(map[objectKey]*Object),
		events:  make(map[messages.ActionID]*Event),
	}
}

// IngestCAM updates the map from a received CAM.
func (m *Map) IngestCAM(c *messages.CAM) {
	pos := m.cfg.Frame.ToLocal(geo.LatLon{
		Lat: c.Basic.Position.Latitude.Degrees(),
		Lon: c.Basic.Position.Longitude.Degrees(),
	})
	k := objectKey{station: c.Header.StationID}
	o, ok := m.objects[k]
	if !ok {
		o = &Object{}
		m.objects[k] = o
	}
	o.StationID = c.Header.StationID
	o.StationType = c.Basic.StationType
	o.Source = SourceCAM
	o.Position = pos
	o.SpeedMS = c.HighFrequency.Speed.MS()
	o.HeadingRad = c.HighFrequency.Heading.Radians()
	o.Updated = m.cfg.Now()
	m.cfg.Flight.Record(o.Updated, flight.LDMIngest, flight.IngestCAM, int64(c.Header.StationID), 0)
}

// IngestSensedObject records a locally sensed object (camera
// detection). Objects are keyed by classification label, matching the
// testbed's single-region-of-interest tracking.
func (m *Map) IngestSensedObject(label string, st units.StationType, pos geo.Point, speedMS, headingRad float64) {
	k := objectKey{label: label}
	o, ok := m.objects[k]
	if !ok {
		o = &Object{ObjectID: m.nextObjID}
		m.nextObjID++
		m.objects[k] = o
	}
	o.StationType = st
	o.Source = SourceLocalSensor
	o.Position = pos
	o.SpeedMS = speedMS
	o.HeadingRad = headingRad
	o.Classification = label
	o.Updated = m.cfg.Now()
	m.cfg.Flight.Record(o.Updated, flight.LDMIngest, flight.IngestSensor, int64(o.ObjectID), 0)
}

// IngestCPMObject fuses one remotely perceived object from a received
// CPM, keyed by (originating station, wire object ID). measured is the
// local estimate of the remote measurement time; an update that is not
// newer than the stored state is ignored as stale. Reports whether the
// object was stored or refreshed.
func (m *Map) IngestCPMObject(origin units.StationID, objectID uint16, st units.StationType, class string, pos geo.Point, speedMS, headingRad float64, measured time.Duration) bool {
	if now := m.cfg.Now(); measured > now {
		// A remote clock ahead of ours must not make the object
		// immortal; clamp to local now.
		measured = now
	}
	k := objectKey{station: origin, remote: true, objID: objectID}
	o, ok := m.objects[k]
	if !ok {
		o = &Object{ObjectID: objectID, Origin: origin}
		m.objects[k] = o
	} else if measured <= o.Updated {
		m.cfg.Flight.Record(m.cfg.Now(), flight.LDMFuse, flight.FuseStale, int64(origin), int64(objectID))
		return false // stale or duplicate remote measurement
	}
	m.cfg.Flight.Record(m.cfg.Now(), flight.LDMFuse, flight.FuseStored, int64(origin), int64(objectID))
	o.StationType = st
	o.Source = SourceCPM
	o.Position = pos
	o.SpeedMS = speedMS
	o.HeadingRad = headingRad
	o.Classification = class
	o.Updated = measured
	return true
}

// IngestDENM records or updates an event from a received or locally
// originated DENM.
func (m *Map) IngestDENM(d *messages.DENM) {
	now := m.cfg.Now()
	pos := m.cfg.Frame.ToLocal(geo.LatLon{
		Lat: d.Management.EventPosition.Latitude.Degrees(),
		Lon: d.Management.EventPosition.Longitude.Degrees(),
	})
	ev, ok := m.events[d.Management.ActionID]
	if !ok {
		ev = &Event{ActionID: d.Management.ActionID, Detection: now}
		m.events[d.Management.ActionID] = ev
		// Anchor expiry to the event's detection: validityDuration runs
		// from detectionTime (EN 302 637-3), which the first reception
		// approximates locally. Re-anchoring on every copy would let
		// DEN repetitions extend the event's lifetime indefinitely.
		ev.Expires = now + time.Duration(d.Validity())*time.Second
		ev.lastRef = d.Management.ReferenceTime
	} else if d.Management.ReferenceTime < ev.lastRef {
		return // stale copy of an older version
	} else if d.Management.ReferenceTime > ev.lastRef {
		// A genuine update (or termination) carries a new referenceTime
		// and restarts the validity interval from its own detection.
		ev.Expires = now + time.Duration(d.Validity())*time.Second
		ev.lastRef = d.Management.ReferenceTime
		ev.Terminated = d.IsTermination()
	}
	if d.Situation != nil {
		ev.EventType = d.Situation.EventType
	}
	ev.Position = pos
	if d.IsTermination() {
		ev.Terminated = true
	}
	m.cfg.Flight.Record(now, flight.LDMIngest, flight.IngestDENM,
		int64(uint32(d.Management.ActionID.OriginatingStationID)), int64(d.Management.ActionID.SequenceNumber))
}

// Object returns the tracked object for a station ID.
func (m *Map) Object(id units.StationID) (Object, bool) {
	o, ok := m.objects[objectKey{station: id}]
	if !ok || m.stale(o) {
		return Object{}, false
	}
	return *o, true
}

// SensedObject returns the tracked camera object with the given label.
func (m *Map) SensedObject(label string) (Object, bool) {
	o, ok := m.objects[objectKey{label: label}]
	if !ok || m.stale(o) {
		return Object{}, false
	}
	return *o, true
}

func (m *Map) stale(o *Object) bool {
	return m.cfg.Now()-o.Updated > m.cfg.ObjectLifetime
}

// LocalPerception returns the station's fresh locally sensed objects,
// ordered by wire object ID — the exact set a CP service may share.
// Ownership rule: objects learned from CAMs or fused from other
// stations' CPMs are second-hand and are never returned here, so a
// station cannot re-broadcast perception it does not own.
func (m *Map) LocalPerception() []Object {
	var out []Object
	for _, o := range m.objects {
		if o.Source != SourceLocalSensor || m.stale(o) {
			continue
		}
		out = append(out, *o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ObjectID < out[j].ObjectID })
	return out
}

// ObjectsWithin returns fresh objects within radius of centre, nearest
// first. The slice is freshly allocated. Each distance is computed
// once and cached for the sort: this sits on the hazard-decision and
// CPM-fusion hot paths, where recomputing the sqrt inside the
// comparator cost O(n log n) hypot calls per query.
func (m *Map) ObjectsWithin(centre geo.Point, radius float64) []Object {
	var out []Object
	var dist []float64
	for _, o := range m.objects {
		if m.stale(o) {
			continue
		}
		if d := o.Position.DistanceTo(centre); d <= radius {
			out = append(out, *o)
			dist = append(dist, d)
		}
	}
	sort.Sort(&byCachedDistance{objs: out, dist: dist})
	return out
}

// byCachedDistance sorts objects by their precomputed distance, with a
// total tie-break over identity fields so map-iteration order can
// never leak into the result (two objects at the same range — e.g. a
// locally sensed road user and its CPM echo — would otherwise land in
// random order).
type byCachedDistance struct {
	objs []Object
	dist []float64
}

func (s *byCachedDistance) Len() int { return len(s.objs) }

func (s *byCachedDistance) Less(i, j int) bool {
	if s.dist[i] != s.dist[j] {
		return s.dist[i] < s.dist[j]
	}
	a, b := &s.objs[i], &s.objs[j]
	if a.Source != b.Source {
		return a.Source < b.Source
	}
	if a.StationID != b.StationID {
		return a.StationID < b.StationID
	}
	if a.Origin != b.Origin {
		return a.Origin < b.Origin
	}
	if a.ObjectID != b.ObjectID {
		return a.ObjectID < b.ObjectID
	}
	return a.Classification < b.Classification
}

func (s *byCachedDistance) Swap(i, j int) {
	s.objs[i], s.objs[j] = s.objs[j], s.objs[i]
	s.dist[i], s.dist[j] = s.dist[j], s.dist[i]
}

// ActiveEvents returns non-terminated, unexpired events. The slice is
// freshly allocated, ordered by action ID for determinism.
func (m *Map) ActiveEvents() []Event {
	now := m.cfg.Now()
	var out []Event
	for _, ev := range m.events {
		if ev.Terminated || now >= ev.Expires {
			continue
		}
		out = append(out, *ev)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].ActionID, out[j].ActionID
		if a.OriginatingStationID != b.OriginatingStationID {
			return a.OriginatingStationID < b.OriginatingStationID
		}
		return a.SequenceNumber < b.SequenceNumber
	})
	return out
}

// Event returns the event with the given action ID if still stored.
func (m *Map) Event(id messages.ActionID) (Event, bool) {
	ev, ok := m.events[id]
	if !ok {
		return Event{}, false
	}
	return *ev, true
}

// GC removes stale objects and expired events. Call periodically.
func (m *Map) GC() {
	now := m.cfg.Now()
	var objs, evs int64
	for k, o := range m.objects {
		if now-o.Updated > m.cfg.ObjectLifetime {
			delete(m.objects, k)
			objs++
		}
	}
	for id, ev := range m.events {
		if now >= ev.Expires {
			delete(m.events, id)
			evs++
		}
	}
	// One aggregate event per sweep: per-deletion records would leak map
	// iteration order into the flight ring and break dump determinism.
	if objs > 0 || evs > 0 {
		m.cfg.Flight.Record(now, flight.LDMExpire, 0, objs, evs)
	}
}

// Clear drops every stored object and event — including CPM-fused
// state — modelling the state loss of a station process restart. The
// map stays usable afterwards; sensor object IDs restart from zero as
// a rebooted perception process would.
func (m *Map) Clear() {
	m.objects = make(map[objectKey]*Object)
	m.events = make(map[messages.ActionID]*Event)
	m.nextObjID = 0
}

// Counts reports the number of stored objects and events (including
// stale entries not yet collected), for diagnostics.
func (m *Map) Counts() (objects, events int) {
	return len(m.objects), len(m.events)
}

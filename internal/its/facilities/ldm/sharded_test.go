package ldm

import (
	"sync"
	"testing"
	"time"

	"itsbed/internal/geo"
	"itsbed/internal/units"
)

func newTestSharded(t *testing.T, n int) *Sharded {
	t.Helper()
	frame, err := geo.NewFrame(geo.CISTERLab)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Duration(0)
	return NewSharded(n, Config{
		Frame: frame,
		Now:   func() time.Duration { return now },
	})
}

func TestShardedRoutesByOriginator(t *testing.T) {
	s := newTestSharded(t, 4)
	// Stations 1..8 land on shards 1,2,3,0,1,2,3,0 — every shard holds
	// exactly two objects.
	for id := units.StationID(1); id <= 8; id++ {
		s.IngestCAM(testCAM(id, geo.CISTERLab, 1.0))
	}
	objs, _ := s.Counts()
	if objs != 8 {
		t.Fatalf("objects %d, want 8", objs)
	}
	for i, sc := range s.ShardCounts() {
		if sc[0] != 2 {
			t.Fatalf("shard %d holds %d objects, want 2", i, sc[0])
		}
	}
	s.IngestDENM(testDENM(5, 1, 10))
	_, events := s.Counts()
	if events != 1 {
		t.Fatalf("events %d, want 1", events)
	}
}

// TestShardedConcurrentIngest hammers every shard from many goroutines
// while readers poll Counts/ShardCounts — run under -race this is the
// daemon hot path (hundreds of hosted stations ingesting concurrently
// with HTTP /ldm reads).
func TestShardedConcurrentIngest(t *testing.T) {
	s := newTestSharded(t, 8)
	const writers = 16
	const perWriter = 50

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					s.Counts()
					s.ShardCounts()
				}
			}
		}()
	}
	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < perWriter; i++ {
				id := units.StationID(1 + w*perWriter + i)
				s.IngestCAM(testCAM(id, geo.CISTERLab, 1.0))
				s.IngestDENM(testDENM(id, uint16(i+1), 60))
			}
		}(w)
	}
	writerWG.Wait()
	close(stop)
	wg.Wait()

	objs, events := s.Counts()
	if want := writers * perWriter; objs != want || events != want {
		t.Fatalf("objects %d events %d, want %d each", objs, events, want)
	}
	// Per-shard totals must sum to the global count — no lost updates.
	sum := 0
	for _, sc := range s.ShardCounts() {
		sum += sc[0]
	}
	if sum != objs {
		t.Fatalf("shard sum %d != total %d", sum, objs)
	}

	s.Clear()
	if objs, events := s.Counts(); objs != 0 || events != 0 {
		t.Fatalf("after Clear: %d/%d, want 0/0", objs, events)
	}
}

func TestShardedDefaultShardCount(t *testing.T) {
	s := newTestSharded(t, 0)
	if s.Shards() != DefaultShards {
		t.Fatalf("shards %d, want %d", s.Shards(), DefaultShards)
	}
}

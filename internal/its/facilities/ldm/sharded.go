package ldm

import (
	"sync"

	"itsbed/internal/its/messages"
)

// Sharded is a lock-sharded LDM for the wall-clock daemons: the plain
// Map is single-threaded by design (the simulation serialises access
// on kernel events), but a multiplexed daemon ingests CAMs from
// hundreds of hosted stations concurrently with HTTP reads. Sharding
// by originating station spreads that contention across independent
// locks while keeping each shard an ordinary Map.
type Sharded struct {
	shards []shard
}

type shard struct {
	mu sync.Mutex
	m  *Map
}

// DefaultShards is the shard count when NewSharded is given zero.
const DefaultShards = 16

// NewSharded builds a sharded LDM of n shards (zero selects
// DefaultShards), each configured with cfg. Flight hooks are shared
// verbatim; pass a zero Hook to keep the daemons' high-rate CAM churn
// out of the black box.
func NewSharded(n int, cfg Config) *Sharded {
	if n <= 0 {
		n = DefaultShards
	}
	s := &Sharded{shards: make([]shard, n)}
	for i := range s.shards {
		s.shards[i].m = New(cfg)
	}
	return s
}

// Shards reports the shard count.
func (s *Sharded) Shards() int { return len(s.shards) }

// shardFor maps an originating station to its shard.
func (s *Sharded) shardFor(station uint32) *shard {
	return &s.shards[station%uint32(len(s.shards))]
}

// IngestCAM routes a received CAM to the originator's shard.
func (s *Sharded) IngestCAM(c *messages.CAM) {
	sh := s.shardFor(uint32(c.Header.StationID))
	sh.mu.Lock()
	sh.m.IngestCAM(c)
	sh.mu.Unlock()
}

// IngestDENM routes a received DENM to its originator's shard.
func (s *Sharded) IngestDENM(d *messages.DENM) {
	sh := s.shardFor(uint32(d.Management.ActionID.OriginatingStationID))
	sh.mu.Lock()
	sh.m.IngestDENM(d)
	sh.mu.Unlock()
}

// Counts sums live objects and events across every shard.
func (s *Sharded) Counts() (objects, events int) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		o, e := sh.m.Counts()
		sh.mu.Unlock()
		objects += o
		events += e
	}
	return objects, events
}

// ShardCounts reports per-shard (objects, events) pairs — the /ldm
// endpoint's view of how evenly station traffic spreads.
func (s *Sharded) ShardCounts() [][2]int {
	out := make([][2]int, len(s.shards))
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		o, e := sh.m.Counts()
		sh.mu.Unlock()
		out[i] = [2]int{o, e}
	}
	return out
}

// GC sweeps every shard.
func (s *Sharded) GC() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.m.GC()
		sh.mu.Unlock()
	}
}

// Clear empties every shard.
func (s *Sharded) Clear() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.m.Clear()
		sh.mu.Unlock()
	}
}

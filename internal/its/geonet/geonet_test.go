package geonet

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"itsbed/internal/geo"
	"itsbed/internal/units"
)

func testFrame(t *testing.T) *geo.Frame {
	t.Helper()
	f, err := geo.NewFrame(geo.CISTERLab)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestAddressRoundTrip(t *testing.T) {
	f := func(station uint32, manual bool, st uint8) bool {
		a := Address{
			Manual:      manual,
			StationType: units.StationType(st & 0x1f),
			MAC:         [6]byte{0x02, 0x11, byte(station >> 24), byte(station >> 16), byte(station >> 8), byte(station)},
		}
		wire := a.Marshal()
		got, err := UnmarshalAddress(wire[:])
		return err == nil && got == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestAddressDeterministic(t *testing.T) {
	a := NewAddress(units.StationTypePassengerCar, 2001)
	b := NewAddress(units.StationTypePassengerCar, 2001)
	if a != b {
		t.Fatal("NewAddress not deterministic")
	}
	c := NewAddress(units.StationTypePassengerCar, 2002)
	if a == c {
		t.Fatal("different stations share an address")
	}
}

func TestAddressTooShort(t *testing.T) {
	if _, err := UnmarshalAddress([]byte{1, 2}); err == nil {
		t.Fatal("short address parsed")
	}
}

func TestLPVRoundTrip(t *testing.T) {
	v := LongPositionVector{
		Address:          NewAddress(units.StationTypeRoadSideUnit, 1001),
		Timestamp:        0xdeadbeef,
		Latitude:         units.LatitudeFromDegrees(41.178),
		Longitude:        units.LongitudeFromDegrees(-8.608),
		PositionAccurate: true,
		Speed:            150,
		Heading:          900,
	}
	wire := v.Marshal()
	got, err := UnmarshalLPV(wire[:])
	if err != nil {
		t.Fatal(err)
	}
	if got != v {
		t.Fatalf("round trip %+v != %+v", got, v)
	}
}

func TestLPVNegativeCoordinates(t *testing.T) {
	v := LongPositionVector{
		Address:   NewAddress(units.StationTypePassengerCar, 1),
		Latitude:  -900000000,
		Longitude: -1800000000,
	}
	wire := v.Marshal()
	got, err := UnmarshalLPV(wire[:])
	if err != nil {
		t.Fatal(err)
	}
	if got.Latitude != v.Latitude || got.Longitude != v.Longitude {
		t.Fatal("negative coordinates corrupted")
	}
}

func TestSHBPacketRoundTrip(t *testing.T) {
	p := &Packet{
		Version:           CurrentVersion,
		Lifetime:          Lifetime{Multiplier: 1, Base: 1},
		RemainingHopLimit: 1,
		Next:              NextBTPB,
		Type:              HeaderTypeTSB,
		Subtype:           SubtypeSHB,
		TrafficClass:      2,
		MaxHopLimit:       1,
		Source: LongPositionVector{
			Address:   NewAddress(units.StationTypePassengerCar, 2001),
			Timestamp: 1234,
			Latitude:  411780000,
			Longitude: -86080000,
		},
		Payload: []byte("cam-payload"),
	}
	wire, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, got) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, p)
	}
}

func TestGBCPacketRoundTrip(t *testing.T) {
	for _, shape := range []AreaShape{ShapeCircle, ShapeRectangle, ShapeEllipse} {
		p := &Packet{
			Version:           CurrentVersion,
			Lifetime:          DefaultLifetime,
			RemainingHopLimit: 10,
			Next:              NextBTPB,
			Type:              HeaderTypeGBC,
			MaxHopLimit:       10,
			Source: LongPositionVector{
				Address: NewAddress(units.StationTypeRoadSideUnit, 1001),
			},
			SequenceNumber: 77,
			DestArea: Area{
				Shape:     shape,
				Latitude:  411780000,
				Longitude: -86080000,
				DistanceA: 200,
				DistanceB: 100,
				Angle:     45,
			},
			Payload: []byte("denm"),
		}
		wire, err := p.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		got, err := Unmarshal(wire)
		if err != nil {
			t.Fatal(err)
		}
		// Marshal sets the subtype from the shape.
		p.Subtype = uint8(shape)
		if !reflect.DeepEqual(p, got) {
			t.Fatalf("shape %v round trip mismatch:\n got %+v\nwant %+v", shape, got, p)
		}
	}
}

func TestUnmarshalMalformed(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2, 3},
		bytes.Repeat([]byte{0xff}, 12), // bogus headers
	}
	for _, c := range cases {
		if _, err := Unmarshal(c); err == nil {
			t.Fatalf("malformed packet %v parsed", c)
		}
	}
}

func TestUnmarshalTruncatedPayload(t *testing.T) {
	p := &Packet{
		Version: CurrentVersion, Lifetime: DefaultLifetime, RemainingHopLimit: 1,
		Next: NextBTPB, Type: HeaderTypeTSB, Subtype: SubtypeSHB, MaxHopLimit: 1,
		Payload: []byte("0123456789"),
	}
	wire, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unmarshal(wire[:len(wire)-4]); err == nil {
		t.Fatal("truncated payload parsed")
	}
}

func TestLifetimeEncoding(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want time.Duration
	}{
		{40 * time.Millisecond, 50 * time.Millisecond},
		{time.Second, time.Second},
		{90 * time.Second, 90 * time.Second},
		{45 * time.Minute, 2700 * time.Second},
		{3 * time.Hour, 6300 * time.Second}, // capped
	}
	for _, c := range cases {
		lt := LifetimeFrom(c.d)
		if lt.Duration() != c.want {
			t.Fatalf("LifetimeFrom(%v).Duration()=%v, want %v", c.d, lt.Duration(), c.want)
		}
	}
}

func TestAreaContainsCircle(t *testing.T) {
	frame := testFrame(t)
	centre := frame.ToGeodetic(geo.Point{X: 0, Y: 0})
	a := CircleAround(units.LatitudeFromDegrees(centre.Lat), units.LongitudeFromDegrees(centre.Lon), 100)
	inside := frame.ToGeodetic(geo.Point{X: 50, Y: 50})
	outside := frame.ToGeodetic(geo.Point{X: 90, Y: 90})
	if !a.Contains(frame, units.LatitudeFromDegrees(inside.Lat), units.LongitudeFromDegrees(inside.Lon)) {
		t.Fatal("point inside circle rejected")
	}
	if a.Contains(frame, units.LatitudeFromDegrees(outside.Lat), units.LongitudeFromDegrees(outside.Lon)) {
		t.Fatal("point outside circle accepted")
	}
	// Centre has F = 1.
	if f := a.CharacteristicF(frame, units.LatitudeFromDegrees(centre.Lat), units.LongitudeFromDegrees(centre.Lon)); f < 0.99 {
		t.Fatalf("centre F=%v, want ~1", f)
	}
}

func TestAreaContainsRectangleRotation(t *testing.T) {
	frame := testFrame(t)
	centre := frame.ToGeodetic(geo.Point{})
	a := Area{
		Shape:     ShapeRectangle,
		Latitude:  units.LatitudeFromDegrees(centre.Lat),
		Longitude: units.LongitudeFromDegrees(centre.Lon),
		DistanceA: 100, // along azimuth
		DistanceB: 10,
		Angle:     90, // long axis east-west
	}
	east := frame.ToGeodetic(geo.Point{X: 80, Y: 0})
	north := frame.ToGeodetic(geo.Point{X: 0, Y: 80})
	if !a.Contains(frame, units.LatitudeFromDegrees(east.Lat), units.LongitudeFromDegrees(east.Lon)) {
		t.Fatal("east point should be inside the rotated rectangle")
	}
	if a.Contains(frame, units.LatitudeFromDegrees(north.Lat), units.LongitudeFromDegrees(north.Lon)) {
		t.Fatal("north point should be outside the rotated rectangle")
	}
}

func TestAreaEllipse(t *testing.T) {
	frame := testFrame(t)
	centre := frame.ToGeodetic(geo.Point{})
	a := Area{
		Shape:     ShapeEllipse,
		Latitude:  units.LatitudeFromDegrees(centre.Lat),
		Longitude: units.LongitudeFromDegrees(centre.Lon),
		DistanceA: 100,
		DistanceB: 50,
		Angle:     0, // long axis north
	}
	farNorth := frame.ToGeodetic(geo.Point{X: 0, Y: 90})
	farEast := frame.ToGeodetic(geo.Point{X: 90, Y: 0})
	if !a.Contains(frame, units.LatitudeFromDegrees(farNorth.Lat), units.LongitudeFromDegrees(farNorth.Lon)) {
		t.Fatal("north point inside the ellipse long axis rejected")
	}
	if a.Contains(frame, units.LatitudeFromDegrees(farEast.Lat), units.LongitudeFromDegrees(farEast.Lon)) {
		t.Fatal("east point beyond the short axis accepted")
	}
}

func TestAreaZeroSize(t *testing.T) {
	frame := testFrame(t)
	a := Area{Shape: ShapeCircle}
	if a.Contains(frame, 0, 0) {
		t.Fatal("zero-radius area contains a point")
	}
}

func TestLocationTable(t *testing.T) {
	lt := NewLocationTable(time.Second)
	addr := NewAddress(units.StationTypePassengerCar, 2001)
	lpv := LongPositionVector{Address: addr, Timestamp: 1}
	lt.Update(lpv, 0)
	if _, ok := lt.Lookup(addr, 500*time.Millisecond); !ok {
		t.Fatal("fresh entry missing")
	}
	if _, ok := lt.Lookup(addr, 2*time.Second); ok {
		t.Fatal("stale entry returned")
	}
	if n := len(lt.Neighbours(500 * time.Millisecond)); n != 1 {
		t.Fatalf("neighbours=%d", n)
	}
	lt.GC(5 * time.Second)
	if lt.Len() != 0 {
		t.Fatal("GC left stale entries")
	}
}

func TestDuplicateDetection(t *testing.T) {
	lt := NewLocationTable(0)
	addr := NewAddress(units.StationTypeRoadSideUnit, 1001)
	if lt.IsDuplicate(addr, 7, time.Minute, 0) {
		t.Fatal("first packet flagged duplicate")
	}
	if !lt.IsDuplicate(addr, 7, time.Minute, time.Second) {
		t.Fatal("repeat not flagged")
	}
	// Different sequence number is not a duplicate.
	if lt.IsDuplicate(addr, 8, time.Minute, time.Second) {
		t.Fatal("distinct sequence flagged duplicate")
	}
	// After expiry the pair can reappear.
	if lt.IsDuplicate(addr, 7, time.Millisecond, 2*time.Minute) {
		t.Fatal("expired duplicate record still active")
	}
}

// fakeLink collects sent frames.
type fakeLink struct{ frames [][]byte }

func (f *fakeLink) SendBroadcast(frame []byte) error {
	cp := make([]byte, len(frame))
	copy(cp, frame)
	f.frames = append(f.frames, cp)
	return nil
}

func testRouter(t *testing.T, station units.StationID, pos geo.Point, handler Handler) (*Router, *fakeLink) {
	t.Helper()
	frame := testFrame(t)
	link := &fakeLink{}
	now := time.Duration(0)
	r, err := NewRouter(RouterConfig{
		Frame: frame,
		Now:   func() time.Duration { return now },
	}, link, StaticEgo(
		NewAddress(units.StationTypeRoadSideUnit, station),
		units.LatitudeFromDegrees(frame.ToGeodetic(pos).Lat),
		units.LongitudeFromDegrees(frame.ToGeodetic(pos).Lon),
	), handler)
	if err != nil {
		t.Fatal(err)
	}
	return r, link
}

func TestRouterSHBDelivery(t *testing.T) {
	var delivered []Indication
	sender, senderLink := testRouter(t, 1, geo.Point{}, nil)
	receiver, _ := testRouter(t, 2, geo.Point{X: 5}, func(ind Indication) {
		delivered = append(delivered, ind)
	})
	if err := sender.SendSHB(NextBTPB, 0, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if len(senderLink.frames) != 1 {
		t.Fatalf("frames sent: %d", len(senderLink.frames))
	}
	receiver.OnFrame(senderLink.frames[0])
	if len(delivered) != 1 {
		t.Fatalf("delivered %d", len(delivered))
	}
	if string(delivered[0].Payload) != "hello" {
		t.Fatalf("payload %q", delivered[0].Payload)
	}
	if delivered[0].Type != HeaderTypeTSB {
		t.Fatal("wrong type")
	}
	if receiver.Table().Len() != 1 {
		t.Fatal("location table not updated")
	}
}

func TestRouterGBCAreaFiltering(t *testing.T) {
	frame := testFrame(t)
	var inCount, outCount int
	sender, link := testRouter(t, 1, geo.Point{}, nil)
	inside, _ := testRouter(t, 2, geo.Point{X: 10}, func(Indication) { inCount++ })
	outside, _ := testRouter(t, 3, geo.Point{X: 500}, func(Indication) { outCount++ })

	centre := frame.ToGeodetic(geo.Point{})
	area := CircleAround(units.LatitudeFromDegrees(centre.Lat), units.LongitudeFromDegrees(centre.Lon), 100)
	if err := sender.SendGBC(NextBTPB, 0, area, time.Minute, []byte("warn")); err != nil {
		t.Fatal(err)
	}
	inside.OnFrame(link.frames[0])
	outside.OnFrame(link.frames[0])
	if inCount != 1 {
		t.Fatalf("inside received %d", inCount)
	}
	if outCount != 0 {
		t.Fatalf("outside received %d", outCount)
	}
	if outside.OutOfArea != 1 {
		t.Fatal("out-of-area counter not incremented")
	}
}

func TestRouterGBCDuplicateSuppression(t *testing.T) {
	frame := testFrame(t)
	n := 0
	sender, link := testRouter(t, 1, geo.Point{}, nil)
	receiver, _ := testRouter(t, 2, geo.Point{X: 10}, func(Indication) { n++ })
	centre := frame.ToGeodetic(geo.Point{})
	area := CircleAround(units.LatitudeFromDegrees(centre.Lat), units.LongitudeFromDegrees(centre.Lon), 100)
	if err := sender.SendGBC(NextBTPB, 0, area, time.Minute, []byte("warn")); err != nil {
		t.Fatal(err)
	}
	receiver.OnFrame(link.frames[0])
	receiver.OnFrame(link.frames[0]) // forwarded copy arrives again
	if n != 1 {
		t.Fatalf("delivered %d, want 1", n)
	}
	if receiver.Duplicates != 1 {
		t.Fatalf("duplicates=%d", receiver.Duplicates)
	}
}

func TestRouterGBCForwarding(t *testing.T) {
	frame := testFrame(t)
	sender, senderLink := testRouter(t, 1, geo.Point{}, nil)
	fwd, fwdLink := testRouter(t, 2, geo.Point{X: 10}, func(Indication) {})
	centre := frame.ToGeodetic(geo.Point{})
	area := CircleAround(units.LatitudeFromDegrees(centre.Lat), units.LongitudeFromDegrees(centre.Lon), 100)
	if err := sender.SendGBC(NextBTPB, 0, area, time.Minute, []byte("warn")); err != nil {
		t.Fatal(err)
	}
	fwd.OnFrame(senderLink.frames[0])
	if fwd.Forwarded != 1 || len(fwdLink.frames) != 1 {
		t.Fatalf("forwarded=%d frames=%d", fwd.Forwarded, len(fwdLink.frames))
	}
	// The rebroadcast copy has a decremented hop limit.
	p, err := Unmarshal(fwdLink.frames[0])
	if err != nil {
		t.Fatal(err)
	}
	if p.RemainingHopLimit != DefaultHopLimit-1 {
		t.Fatalf("hop limit %d", p.RemainingHopLimit)
	}
}

func TestRouterForwardingDisabled(t *testing.T) {
	frame := testFrame(t)
	link := &fakeLink{}
	now := time.Duration(0)
	centreG := frame.ToGeodetic(geo.Point{X: 10})
	r, err := NewRouter(RouterConfig{
		Frame:             frame,
		Now:               func() time.Duration { return now },
		DisableForwarding: true,
	}, link, StaticEgo(NewAddress(units.StationTypePassengerCar, 5),
		units.LatitudeFromDegrees(centreG.Lat), units.LongitudeFromDegrees(centreG.Lon)), func(Indication) {})
	if err != nil {
		t.Fatal(err)
	}
	sender, senderLink := testRouter(t, 1, geo.Point{}, nil)
	centre := frame.ToGeodetic(geo.Point{})
	area := CircleAround(units.LatitudeFromDegrees(centre.Lat), units.LongitudeFromDegrees(centre.Lon), 100)
	if err := sender.SendGBC(NextBTPB, 0, area, time.Minute, []byte("warn")); err != nil {
		t.Fatal(err)
	}
	r.OnFrame(senderLink.frames[0])
	if len(link.frames) != 0 {
		t.Fatal("forwarding-disabled router rebroadcast")
	}
}

func TestRouterConfigValidation(t *testing.T) {
	frame := testFrame(t)
	link := &fakeLink{}
	ego := StaticEgo(NewAddress(units.StationTypePassengerCar, 1), 0, 0)
	if _, err := NewRouter(RouterConfig{Now: func() time.Duration { return 0 }}, link, ego, nil); err == nil {
		t.Fatal("router without frame accepted")
	}
	if _, err := NewRouter(RouterConfig{Frame: frame}, link, ego, nil); err == nil {
		t.Fatal("router without time source accepted")
	}
	if _, err := NewRouter(RouterConfig{Frame: frame, Now: func() time.Duration { return 0 }}, nil, ego, nil); err == nil {
		t.Fatal("router without link accepted")
	}
}

func TestBeaconRoundTrip(t *testing.T) {
	p := &Packet{
		Version:           CurrentVersion,
		Lifetime:          Lifetime{Multiplier: 1, Base: 1},
		RemainingHopLimit: 1,
		Next:              NextAny,
		Type:              HeaderTypeBeacon,
		MaxHopLimit:       1,
		Source: LongPositionVector{
			Address:   NewAddress(units.StationTypePassengerCar, 7),
			Timestamp: 99,
			Latitude:  411780000,
			Longitude: -86080000,
			Speed:     150,
		},
	}
	wire, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	// Unmarshal materialises an empty payload slice.
	p.Payload = []byte{}
	if !reflect.DeepEqual(p, got) {
		t.Fatalf("beacon round trip:\n got %+v\nwant %+v", got, p)
	}
}

func TestBeaconWithPayloadRejected(t *testing.T) {
	p := &Packet{
		Version: CurrentVersion, Type: HeaderTypeBeacon, Payload: []byte{1},
	}
	if _, err := p.Marshal(); err == nil {
		t.Fatal("beacon with payload marshalled")
	}
}

func TestBeaconFeedsLocationTableOnly(t *testing.T) {
	delivered := 0
	sender, link := testRouter(t, 1, geo.Point{}, nil)
	receiver, _ := testRouter(t, 2, geo.Point{X: 5}, func(Indication) { delivered++ })
	if err := sender.SendBeacon(); err != nil {
		t.Fatal(err)
	}
	receiver.OnFrame(link.frames[0])
	if delivered != 0 {
		t.Fatal("beacon delivered to the upper layer")
	}
	if receiver.BeaconsReceived != 1 {
		t.Fatal("beacon not counted")
	}
	if receiver.Table().Len() != 1 {
		t.Fatal("beacon did not feed the location table")
	}
}

func TestRouterLastTransmit(t *testing.T) {
	r, _ := testRouter(t, 1, geo.Point{}, nil)
	if r.LastTransmit() != 0 {
		t.Fatal("fresh router has a transmit time")
	}
	if err := r.SendSHB(NextBTPB, 0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	_ = r.LastTransmit() // now == test clock (0); just ensure no panic
}

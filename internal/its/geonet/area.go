package geonet

import (
	"fmt"
	"math"

	"itsbed/internal/geo"
	"itsbed/internal/units"
)

// AreaShape enumerates the geographical area shapes of EN 302 931.
type AreaShape uint8

// Area shapes.
const (
	ShapeCircle    AreaShape = 0
	ShapeRectangle AreaShape = 1
	ShapeEllipse   AreaShape = 2
)

// String implements fmt.Stringer.
func (s AreaShape) String() string {
	switch s {
	case ShapeCircle:
		return "circle"
	case ShapeRectangle:
		return "rectangle"
	case ShapeEllipse:
		return "ellipse"
	default:
		return fmt.Sprintf("shape(%d)", uint8(s))
	}
}

// Area is a geographical destination area per EN 302 931: a centre, two
// distances and an azimuth whose meaning depends on the shape.
type Area struct {
	Shape AreaShape
	// Centre of the area.
	Latitude  units.Latitude
	Longitude units.Longitude
	// DistanceA in metres: radius (circle), half-length (rectangle),
	// long semi-axis (ellipse).
	DistanceA uint16
	// DistanceB in metres: unused (circle), half-width (rectangle),
	// short semi-axis (ellipse).
	DistanceB uint16
	// Angle is the azimuth of the long axis in degrees from north.
	Angle uint16
}

// CircleAround builds a circular area of the given radius centred on a
// geodetic point.
func CircleAround(lat units.Latitude, lon units.Longitude, radiusMetres uint16) Area {
	return Area{Shape: ShapeCircle, Latitude: lat, Longitude: lon, DistanceA: radiusMetres}
}

// Contains reports whether the geodetic point p lies inside the area.
// It evaluates the characteristic function F of EN 302 931 (§5): F ≥ 0
// inside or on the border.
func (a Area) Contains(frame *geo.Frame, lat units.Latitude, lon units.Longitude) bool {
	return a.CharacteristicF(frame, lat, lon) >= 0
}

// CharacteristicF evaluates the EN 302 931 characteristic function at
// the geodetic point: 1 at the centre, 0 on the border, negative
// outside.
func (a Area) CharacteristicF(frame *geo.Frame, lat units.Latitude, lon units.Longitude) float64 {
	centre := frame.ToLocal(geo.LatLon{Lat: a.Latitude.Degrees(), Lon: a.Longitude.Degrees()})
	p := frame.ToLocal(geo.LatLon{Lat: lat.Degrees(), Lon: lon.Degrees()})
	d := p.Sub(centre)
	// Rotate into the area's axis frame. The azimuth is measured from
	// north, so the long axis direction in ENU is (sin θ, cos θ).
	theta := float64(a.Angle) * math.Pi / 180
	x := d.X*math.Sin(theta) + d.Y*math.Cos(theta) // along long axis
	y := d.X*math.Cos(theta) - d.Y*math.Sin(theta) // along short axis
	da, db := float64(a.DistanceA), float64(a.DistanceB)
	switch a.Shape {
	case ShapeCircle:
		if da == 0 {
			return -1
		}
		r := math.Hypot(d.X, d.Y)
		return 1 - (r/da)*(r/da)
	case ShapeRectangle:
		if da == 0 || db == 0 {
			return -1
		}
		fx := 1 - (x/da)*(x/da)
		fy := 1 - (y/db)*(y/db)
		return math.Min(fx, fy)
	case ShapeEllipse:
		if da == 0 || db == 0 {
			return -1
		}
		return 1 - (x/da)*(x/da) - (y/db)*(y/db)
	default:
		return -1
	}
}

// areaWireLen is the encoded size of the destination-area fields inside
// a GBC header: lat(4) lon(4) distA(2) distB(2) angle(2).
const areaWireLen = 14

func (a Area) marshalTo(b []byte) {
	put32 := func(off int, v int32) {
		b[off] = byte(v >> 24)
		b[off+1] = byte(v >> 16)
		b[off+2] = byte(v >> 8)
		b[off+3] = byte(v)
	}
	put16 := func(off int, v uint16) {
		b[off] = byte(v >> 8)
		b[off+1] = byte(v)
	}
	put32(0, int32(a.Latitude))
	put32(4, int32(a.Longitude))
	put16(8, a.DistanceA)
	put16(10, a.DistanceB)
	put16(12, a.Angle)
}

func unmarshalArea(shape AreaShape, b []byte) (Area, error) {
	if len(b) < areaWireLen {
		return Area{}, fmt.Errorf("geonet: area needs %d bytes, have %d", areaWireLen, len(b))
	}
	get32 := func(off int) int32 {
		return int32(b[off])<<24 | int32(b[off+1])<<16 | int32(b[off+2])<<8 | int32(b[off+3])
	}
	get16 := func(off int) uint16 { return uint16(b[off])<<8 | uint16(b[off+1]) }
	return Area{
		Shape:     shape,
		Latitude:  units.Latitude(get32(0)),
		Longitude: units.Longitude(get32(4)),
		DistanceA: get16(8),
		DistanceB: get16(10),
		Angle:     get16(12),
	}, nil
}

package geonet

import (
	"fmt"
	"time"

	"itsbed/internal/geo"
	"itsbed/internal/metrics"
	"itsbed/internal/tracing"
	"itsbed/internal/units"
)

// LinkLayer abstracts the access layer below GeoNetworking: the
// simulated 802.11p interface, or a UDP socket in the daemons.
type LinkLayer interface {
	// SendBroadcast queues frame for broadcast transmission.
	SendBroadcast(frame []byte) error
}

// PriorityLink is an optional LinkLayer extension for EDCA-capable
// access layers: the router maps the GN traffic class (0 = highest)
// to a link priority so DENMs contend ahead of CAMs.
type PriorityLink interface {
	SendBroadcastPriority(frame []byte, priority uint8) error
}

// send dispatches a frame at the given traffic class, using the
// priority path when the link supports it.
func (r *Router) send(frame []byte, tc TrafficClass) error {
	if pl, ok := r.link.(PriorityLink); ok {
		return pl.SendBroadcastPriority(frame, uint8(tc)&3)
	}
	return r.link.SendBroadcast(frame)
}

// EgoPositionProvider yields the router's own current position vector;
// on a vehicle this is fed by the navigation stack, on an RSU it is
// static.
type EgoPositionProvider interface {
	EgoPosition() LongPositionVector
}

// Indication is a received upper-layer packet delivered to BTP.
type Indication struct {
	Next    NextHeader
	Type    HeaderType
	Source  LongPositionVector
	Payload []byte
	// Hops is how many times the packet was forwarded before arriving.
	Hops uint8
}

// Handler consumes received indications.
type Handler func(Indication)

// RouterConfig parameterises a GN router.
type RouterConfig struct {
	// Frame anchors geodetic coordinates for area tests.
	Frame *geo.Frame
	// Now yields virtual (or wall) time for table maintenance.
	Now func() time.Duration
	// DefaultHopLimit for GBC packets; 0 selects the standard default.
	DefaultHopLimit uint8
	// DisableForwarding turns off GBC rebroadcast (single-hop setups
	// such as the paper's lab need none).
	DisableForwarding bool
	// Metrics, when non-nil, receives geonet_* counters labeled with
	// Name.
	Metrics *metrics.Registry
	// Name is the station label used on metric families.
	Name string
	// Tracer, when non-nil, records per-packet send/receive spans;
	// duplicate and out-of-area receptions end with a drop_reason.
	Tracer *tracing.Tracer
}

// Router implements GN packet handling for one station: sending SHB
// and GBC packets, receiving, duplicate filtering, delivering to the
// upper layer, and simple constrained rebroadcast of GBC packets when
// the station lies inside the destination area.
type Router struct {
	cfg     RouterConfig
	link    LinkLayer
	ego     EgoPositionProvider
	handler Handler
	table   *LocationTable
	seq     uint16
	lastTx  time.Duration

	// Counters for diagnostics and tests.
	Sent            uint64
	Received        uint64
	Duplicates      uint64
	Forwarded       uint64
	OutOfArea       uint64
	BeaconsReceived uint64

	mSent, mRecv, mDup, mFwd, mOOA, mBeacon *metrics.Counter
}

// NewRouter builds a router. All arguments are required except that
// handler may be nil (packets are then counted but dropped).
func NewRouter(cfg RouterConfig, link LinkLayer, ego EgoPositionProvider, handler Handler) (*Router, error) {
	if cfg.Frame == nil {
		return nil, fmt.Errorf("geonet: router requires a geodetic frame")
	}
	if cfg.Now == nil {
		return nil, fmt.Errorf("geonet: router requires a time source")
	}
	if link == nil || ego == nil {
		return nil, fmt.Errorf("geonet: router requires link layer and ego position provider")
	}
	if cfg.DefaultHopLimit == 0 {
		cfg.DefaultHopLimit = DefaultHopLimit
	}
	r := &Router{
		cfg:     cfg,
		link:    link,
		ego:     ego,
		handler: handler,
		table:   NewLocationTable(0),
	}
	if reg := cfg.Metrics; reg != nil {
		st := metrics.L("station", cfg.Name)
		r.mSent = reg.Counter("geonet_sent_total", st)
		r.mRecv = reg.Counter("geonet_received_total", st)
		r.mDup = reg.Counter("geonet_duplicates_dropped_total", st)
		r.mFwd = reg.Counter("geonet_forwarded_total", st)
		r.mOOA = reg.Counter("geonet_out_of_area_total", st)
		r.mBeacon = reg.Counter("geonet_beacons_received_total", st)
	}
	return r, nil
}

// Table exposes the location table (read-mostly; used by the LDM and
// by tests).
func (r *Router) Table() *LocationTable { return r.table }

// SendBeacon broadcasts a position beacon (EN 302 636-4-1 §10.2):
// stations that have sent nothing for a beacon interval announce
// their position so neighbours' location tables stay fresh.
func (r *Router) SendBeacon() error {
	p := &Packet{
		Version:           CurrentVersion,
		Lifetime:          Lifetime{Multiplier: 1, Base: 1},
		RemainingHopLimit: 1,
		Next:              NextAny,
		Type:              HeaderTypeBeacon,
		MaxHopLimit:       1,
		Source:            r.ego.EgoPosition(),
	}
	frame, err := p.Marshal()
	if err != nil {
		return fmt.Errorf("geonet: marshal beacon: %w", err)
	}
	r.Sent++
	r.mSent.Inc()
	r.lastTx = r.cfg.Now()
	return r.send(frame, 3) // lowest priority
}

// LastTransmit reports when this router last put any packet on the
// air (for the beacon service's silence check).
func (r *Router) LastTransmit() time.Duration { return r.lastTx }

// SendSHB broadcasts payload as a single-hop broadcast (used for CAM).
func (r *Router) SendSHB(next NextHeader, tc TrafficClass, payload []byte) error {
	p := &Packet{
		Version:           CurrentVersion,
		Lifetime:          Lifetime{Multiplier: 1, Base: 1}, // 1 s
		RemainingHopLimit: 1,
		Next:              next,
		Type:              HeaderTypeTSB,
		Subtype:           SubtypeSHB,
		TrafficClass:      tc,
		MaxHopLimit:       1,
		Source:            r.ego.EgoPosition(),
		Payload:           payload,
	}
	frame, err := p.Marshal()
	if err != nil {
		return fmt.Errorf("geonet: marshal SHB: %w", err)
	}
	r.Sent++
	r.mSent.Inc()
	now := r.cfg.Now()
	r.lastTx = now
	sp := r.cfg.Tracer.Start("geonet.send", "geonet", r.cfg.Name, now)
	sp.SetAttr("type", "shb")
	var sendErr error
	r.cfg.Tracer.Scope(sp, func() { sendErr = r.send(frame, tc) })
	sp.End(r.cfg.Now())
	return sendErr
}

// SendGBC broadcasts payload to the destination area (used for DENM).
func (r *Router) SendGBC(next NextHeader, tc TrafficClass, area Area, lifetime time.Duration, payload []byte) error {
	r.seq++
	p := &Packet{
		Version:           CurrentVersion,
		Lifetime:          LifetimeFrom(lifetime),
		RemainingHopLimit: r.cfg.DefaultHopLimit,
		Next:              next,
		Type:              HeaderTypeGBC,
		TrafficClass:      tc,
		MaxHopLimit:       r.cfg.DefaultHopLimit,
		Source:            r.ego.EgoPosition(),
		SequenceNumber:    r.seq,
		DestArea:          area,
		Payload:           payload,
	}
	frame, err := p.Marshal()
	if err != nil {
		return fmt.Errorf("geonet: marshal GBC: %w", err)
	}
	// Record own packet so an echo or a forwarded copy is not
	// re-delivered locally.
	now := r.cfg.Now()
	r.table.IsDuplicate(p.Source.Address, p.SequenceNumber, p.Lifetime.Duration(), now)
	r.Sent++
	r.mSent.Inc()
	r.lastTx = now
	sp := r.cfg.Tracer.Start("geonet.send", "geonet", r.cfg.Name, now)
	sp.SetAttr("type", "gbc")
	sp.SetAttr("gn_seq", fmt.Sprintf("%d", p.SequenceNumber))
	// Bind the GN identity (source address + sequence) so a receiver
	// without synchronous context can re-attach to this tree.
	r.cfg.Tracer.Bind(tracing.KeyGBC(p.Source.Address.String(), p.SequenceNumber), sp)
	var sendErr error
	r.cfg.Tracer.Scope(sp, func() { sendErr = r.send(frame, tc) })
	sp.End(r.cfg.Now())
	return sendErr
}

// OnFrame processes a frame arriving from the link layer.
func (r *Router) OnFrame(frame []byte) {
	p, err := Unmarshal(frame)
	if err != nil {
		return // malformed frames are counted nowhere, as a real MAC would drop them
	}
	now := r.cfg.Now()
	r.table.Update(p.Source, now)
	switch p.Type {
	case HeaderTypeBeacon:
		// Beacons only feed the location table.
		r.BeaconsReceived++
		r.mBeacon.Inc()
	case HeaderTypeTSB:
		r.Received++
		r.mRecv.Inc()
		sp := r.cfg.Tracer.Start("geonet.receive", "geonet", r.cfg.Name, now)
		sp.SetAttr("type", "shb")
		r.cfg.Tracer.Scope(sp, func() { r.deliver(p) })
		sp.End(r.cfg.Now())
	case HeaderTypeGBC:
		sp := r.rxSpan(p, now)
		if r.table.IsDuplicate(p.Source.Address, p.SequenceNumber, p.Lifetime.Duration(), now) {
			r.Duplicates++
			r.mDup.Inc()
			sp.Drop(now, "duplicate")
			return
		}
		ego := r.ego.EgoPosition()
		inside := p.DestArea.Contains(r.cfg.Frame, ego.Latitude, ego.Longitude)
		if inside {
			r.Received++
			r.mRecv.Inc()
			r.cfg.Tracer.Scope(sp, func() { r.deliver(p) })
		} else {
			r.OutOfArea++
			r.mOOA.Inc()
			sp.Drop(now, "out_of_area")
		}
		// Simplified area forwarding: stations inside the destination
		// area rebroadcast while hops remain, so the warning floods
		// the region of interest (EN 302 636-4-1 simple GeoBroadcast
		// forwarding algorithm).
		if inside && !r.cfg.DisableForwarding && p.RemainingHopLimit > 1 {
			fwd := *p
			fwd.RemainingHopLimit--
			if frame, err := fwd.Marshal(); err == nil {
				r.Forwarded++
				r.mFwd.Inc()
				sp.SetAttr("forwarded", "true")
				r.cfg.Tracer.Scope(sp, func() { _ = r.send(frame, p.TrafficClass) })
			}
		}
		if inside {
			sp.End(r.cfg.Now())
		}
	}
}

// rxSpan opens the receive span for a GBC packet: under the sender's
// airtime span when reception is synchronous (the simulated medium),
// else re-attached by the GN source address + sequence identity.
func (r *Router) rxSpan(p *Packet, now time.Duration) *tracing.Span {
	if r.cfg.Tracer == nil {
		return nil
	}
	parent := r.cfg.Tracer.Current()
	if parent == nil {
		parent = r.cfg.Tracer.Find(tracing.KeyGBC(p.Source.Address.String(), p.SequenceNumber))
	}
	sp := r.cfg.Tracer.StartChild(parent, "geonet.receive", "geonet", r.cfg.Name, now)
	sp.SetAttr("type", "gbc")
	sp.SetAttr("gn_seq", fmt.Sprintf("%d", p.SequenceNumber))
	return sp
}

func (r *Router) deliver(p *Packet) {
	if r.handler == nil {
		return
	}
	hops := uint8(0)
	if p.MaxHopLimit > p.RemainingHopLimit {
		hops = p.MaxHopLimit - p.RemainingHopLimit
	}
	r.handler(Indication{
		Next:    p.Next,
		Type:    p.Type,
		Source:  p.Source,
		Payload: p.Payload,
		Hops:    hops,
	})
}

// StaticEgo returns an EgoPositionProvider for a fixed road-side
// station.
func StaticEgo(addr Address, lat units.Latitude, lon units.Longitude) EgoPositionProvider {
	return staticEgo{LongPositionVector{
		Address:          addr,
		Latitude:         lat,
		Longitude:        lon,
		PositionAccurate: true,
	}}
}

type staticEgo struct{ lpv LongPositionVector }

func (s staticEgo) EgoPosition() LongPositionVector { return s.lpv }

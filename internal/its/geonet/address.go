// Package geonet implements the subset of ETSI GeoNetworking
// (EN 302 636-4-1) that the ITS-G5 testbed exercises: GN addresses,
// long position vectors, basic and common headers, the Single-Hop
// Broadcast (SHB) and GeoBroadcast (GBC) packet types, geographical
// target areas (EN 302 931), a location table with duplicate-packet
// detection, and a router that performs delivery and constrained
// rebroadcast forwarding over an abstract link layer.
package geonet

import (
	"encoding/binary"
	"fmt"

	"itsbed/internal/units"
)

// AddrLen is the size of a GN_ADDR in bytes.
const AddrLen = 8

// Address is a GeoNetworking address: configuration flag, station
// type, and a 48-bit link-layer address.
type Address struct {
	// Manual reports manually-configured (true) vs auto-configured.
	Manual bool
	// StationType mirrors the ITS station type.
	StationType units.StationType
	// MAC is the 48-bit link layer address.
	MAC [6]byte
}

// NewAddress derives a deterministic GN address from a station ID.
func NewAddress(st units.StationType, station units.StationID) Address {
	var mac [6]byte
	mac[0] = 0x02 // locally administered
	mac[1] = 0x11
	binary.BigEndian.PutUint32(mac[2:], uint32(station))
	return Address{Manual: true, StationType: st, MAC: mac}
}

// Marshal encodes the address to its 8-byte wire form.
func (a Address) Marshal() [AddrLen]byte {
	var out [AddrLen]byte
	var head uint16
	if a.Manual {
		head |= 1 << 15
	}
	head |= uint16(a.StationType&0x1f) << 10
	binary.BigEndian.PutUint16(out[0:2], head)
	copy(out[2:], a.MAC[:])
	return out
}

// UnmarshalAddress decodes an 8-byte GN address.
func UnmarshalAddress(b []byte) (Address, error) {
	if len(b) < AddrLen {
		return Address{}, fmt.Errorf("geonet: address needs %d bytes, have %d", AddrLen, len(b))
	}
	head := binary.BigEndian.Uint16(b[0:2])
	var a Address
	a.Manual = head&(1<<15) != 0
	a.StationType = units.StationType((head >> 10) & 0x1f)
	copy(a.MAC[:], b[2:8])
	return a, nil
}

// String implements fmt.Stringer.
func (a Address) String() string {
	return fmt.Sprintf("%s/%02x:%02x:%02x:%02x:%02x:%02x",
		a.StationType, a.MAC[0], a.MAC[1], a.MAC[2], a.MAC[3], a.MAC[4], a.MAC[5])
}

// LongPositionVector carries a station's address and geo-referenced
// kinematic state (EN 302 636-4-1 §8.5).
type LongPositionVector struct {
	Address Address
	// Timestamp of the position, ms since ITS epoch modulo 2^32.
	Timestamp uint32
	Latitude  units.Latitude
	Longitude units.Longitude
	// PositionAccurate is the PAI bit.
	PositionAccurate bool
	// Speed in 0.01 m/s (15-bit field).
	Speed uint16
	// Heading in 0.1 degree.
	Heading units.Heading
}

// LPVLen is the wire size of a long position vector.
const LPVLen = 24

// Marshal encodes the LPV to its 24-byte wire form.
func (v LongPositionVector) Marshal() [LPVLen]byte {
	var out [LPVLen]byte
	addr := v.Address.Marshal()
	copy(out[0:8], addr[:])
	binary.BigEndian.PutUint32(out[8:12], v.Timestamp)
	binary.BigEndian.PutUint32(out[12:16], uint32(int32(v.Latitude)))
	binary.BigEndian.PutUint32(out[16:20], uint32(int32(v.Longitude)))
	sp := v.Speed & 0x7fff
	if v.PositionAccurate {
		sp |= 1 << 15
	}
	binary.BigEndian.PutUint16(out[20:22], sp)
	binary.BigEndian.PutUint16(out[22:24], uint16(v.Heading))
	return out
}

// UnmarshalLPV decodes a 24-byte long position vector.
func UnmarshalLPV(b []byte) (LongPositionVector, error) {
	if len(b) < LPVLen {
		return LongPositionVector{}, fmt.Errorf("geonet: LPV needs %d bytes, have %d", LPVLen, len(b))
	}
	addr, err := UnmarshalAddress(b[0:8])
	if err != nil {
		return LongPositionVector{}, err
	}
	var v LongPositionVector
	v.Address = addr
	v.Timestamp = binary.BigEndian.Uint32(b[8:12])
	v.Latitude = units.Latitude(int32(binary.BigEndian.Uint32(b[12:16])))
	v.Longitude = units.Longitude(int32(binary.BigEndian.Uint32(b[16:20])))
	sp := binary.BigEndian.Uint16(b[20:22])
	v.PositionAccurate = sp&(1<<15) != 0
	v.Speed = sp & 0x7fff
	v.Heading = units.Heading(binary.BigEndian.Uint16(b[22:24]))
	return v, nil
}

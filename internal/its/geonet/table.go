package geonet

import (
	"time"
)

// LocationTableEntry is one neighbour known to the GN router.
type LocationTableEntry struct {
	Position LongPositionVector
	// LastSeen is virtual time of the last packet from this neighbour.
	LastSeen time.Duration
	// PacketCount counts packets received from this neighbour.
	PacketCount uint64
}

// LocationTable tracks neighbours and performs duplicate-packet
// detection keyed on (source address, sequence number). Entries expire
// after the configured lifetime.
type LocationTable struct {
	lifetime time.Duration
	entries  map[Address]*LocationTableEntry
	// dup maps source MAC + sequence number to the time the duplicate
	// record expires.
	dup map[dupKey]time.Duration
}

type dupKey struct {
	mac [6]byte
	seq uint16
}

// DefaultEntryLifetime is the GN location table entry lifetime (20 s).
const DefaultEntryLifetime = 20 * time.Second

// NewLocationTable returns a table whose entries expire after
// lifetime; zero selects the standard default.
func NewLocationTable(lifetime time.Duration) *LocationTable {
	if lifetime <= 0 {
		lifetime = DefaultEntryLifetime
	}
	return &LocationTable{
		lifetime: lifetime,
		entries:  make(map[Address]*LocationTableEntry),
		dup:      make(map[dupKey]time.Duration),
	}
}

// Update records a packet from the given source position vector at
// virtual time now.
func (t *LocationTable) Update(src LongPositionVector, now time.Duration) {
	e, ok := t.entries[src.Address]
	if !ok {
		e = &LocationTableEntry{}
		t.entries[src.Address] = e
	}
	e.Position = src
	e.LastSeen = now
	e.PacketCount++
}

// Lookup returns the entry for addr if fresh at time now.
func (t *LocationTable) Lookup(addr Address, now time.Duration) (LocationTableEntry, bool) {
	e, ok := t.entries[addr]
	if !ok || now-e.LastSeen > t.lifetime {
		return LocationTableEntry{}, false
	}
	return *e, true
}

// Neighbours returns all fresh entries at time now. The slice is a
// copy and safe to retain.
func (t *LocationTable) Neighbours(now time.Duration) []LocationTableEntry {
	var out []LocationTableEntry
	for _, e := range t.entries {
		if now-e.LastSeen <= t.lifetime {
			out = append(out, *e)
		}
	}
	return out
}

// IsDuplicate records the (source, sequence) pair of a GBC packet and
// reports whether it was already seen within the packet lifetime.
func (t *LocationTable) IsDuplicate(src Address, seq uint16, lifetime, now time.Duration) bool {
	k := dupKey{mac: src.MAC, seq: seq}
	if exp, ok := t.dup[k]; ok && now < exp {
		return true
	}
	t.dup[k] = now + lifetime
	return false
}

// GC drops expired entries and duplicate records. Call periodically.
func (t *LocationTable) GC(now time.Duration) {
	for a, e := range t.entries {
		if now-e.LastSeen > t.lifetime {
			delete(t.entries, a)
		}
	}
	for k, exp := range t.dup {
		if now >= exp {
			delete(t.dup, k)
		}
	}
}

// Len reports the number of entries (fresh or not yet collected).
func (t *LocationTable) Len() int { return len(t.entries) }

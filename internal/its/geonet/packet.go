package geonet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// NextHeader values of the basic header.
const (
	basicNextCommon uint8 = 1
)

// NextHeader values of the common header (upper protocol).
type NextHeader uint8

// Upper-protocol identifiers.
const (
	NextAny  NextHeader = 0
	NextBTPA NextHeader = 1
	NextBTPB NextHeader = 2
	NextIPv6 NextHeader = 3
)

// HeaderType identifies the extended header.
type HeaderType uint8

// Extended header types used by the testbed.
const (
	HeaderTypeAny    HeaderType = 0
	HeaderTypeBeacon HeaderType = 1 // position beacon (no payload)
	HeaderTypeGBC    HeaderType = 4 // GeoBroadcast
	HeaderTypeTSB    HeaderType = 5 // Topologically-scoped broadcast; subtype 0 = SHB
)

// Header subtypes.
const (
	SubtypeSHB uint8 = 0 // single-hop broadcast (TSB with hop limit 1)
)

// Lifetime encodes the GN packet lifetime as the standard's
// multiplier×base pair.
type Lifetime struct {
	// Multiplier 0..63.
	Multiplier uint8
	// Base 0..3: 50 ms, 1 s, 10 s, 100 s.
	Base uint8
}

var lifetimeBases = [4]time.Duration{50 * time.Millisecond, time.Second, 10 * time.Second, 100 * time.Second}

// Duration converts the encoded lifetime to a time.Duration.
func (l Lifetime) Duration() time.Duration {
	return time.Duration(l.Multiplier) * lifetimeBases[l.Base&3]
}

// LifetimeFrom picks the most precise encodable lifetime not less than
// d (capped at the maximum 6300 s).
func LifetimeFrom(d time.Duration) Lifetime {
	for base, unit := range lifetimeBases {
		if d <= unit*63 {
			m := (d + unit - 1) / unit
			return Lifetime{Multiplier: uint8(m), Base: uint8(base)}
		}
	}
	return Lifetime{Multiplier: 63, Base: 3}
}

// DefaultLifetime is the GN default packet lifetime (60 s).
var DefaultLifetime = Lifetime{Multiplier: 60, Base: 1}

// TrafficClass is the GN traffic class octet (SCF, channel offload, TC ID).
type TrafficClass uint8

// DefaultHopLimit is the default maximum hop limit for GBC packets.
const DefaultHopLimit = 10

// Packet is a parsed GeoNetworking packet.
type Packet struct {
	// Basic header fields.
	Version  uint8
	Lifetime Lifetime
	// RemainingHopLimit decrements at each forwarding hop.
	RemainingHopLimit uint8
	// Common header fields.
	Next         NextHeader
	Type         HeaderType
	Subtype      uint8
	TrafficClass TrafficClass
	MaxHopLimit  uint8
	// Extended header fields.
	Source LongPositionVector
	// SequenceNumber is carried by GBC packets for duplicate detection.
	SequenceNumber uint16
	// DestArea is the GBC destination area.
	DestArea Area
	// Payload is the upper-layer packet (BTP + facilities message).
	Payload []byte
}

// CurrentVersion is the GN protocol version emitted (EN 302 636-4-1 v1.3.1 ⇒ 1).
const CurrentVersion uint8 = 1

const (
	basicHeaderLen  = 4
	commonHeaderLen = 8
	shbExtLen       = LPVLen + 4
	gbcExtLen       = 2 + 2 + LPVLen + areaWireLen + 2
	beaconExtLen    = LPVLen
)

// ErrMalformed indicates a packet that does not parse.
var ErrMalformed = errors.New("geonet: malformed packet")

// Marshal encodes the packet to wire bytes.
func (p *Packet) Marshal() ([]byte, error) {
	var extLen int
	switch p.Type {
	case HeaderTypeTSB:
		if p.Subtype != SubtypeSHB {
			return nil, fmt.Errorf("geonet: unsupported TSB subtype %d", p.Subtype)
		}
		extLen = shbExtLen
	case HeaderTypeGBC:
		// For GBC the header subtype carries the area shape.
		p.Subtype = uint8(p.DestArea.Shape)
		extLen = gbcExtLen
	case HeaderTypeBeacon:
		if len(p.Payload) != 0 {
			return nil, fmt.Errorf("geonet: beacon with payload")
		}
		extLen = beaconExtLen
	default:
		return nil, fmt.Errorf("geonet: unsupported header type %d", p.Type)
	}
	out := make([]byte, basicHeaderLen+commonHeaderLen+extLen+len(p.Payload))
	// Basic header.
	out[0] = p.Version<<4 | basicNextCommon
	out[1] = 0 // reserved
	out[2] = p.Lifetime.Multiplier<<2 | p.Lifetime.Base&3
	out[3] = p.RemainingHopLimit
	// Common header.
	ch := out[basicHeaderLen:]
	ch[0] = uint8(p.Next) << 4
	ch[1] = uint8(p.Type)<<4 | p.Subtype&0xf
	ch[2] = uint8(p.TrafficClass)
	ch[3] = 0 // flags (mobile)
	if len(p.Payload) > 0xffff {
		return nil, fmt.Errorf("geonet: payload of %d bytes exceeds 16-bit length", len(p.Payload))
	}
	binary.BigEndian.PutUint16(ch[4:6], uint16(len(p.Payload)))
	ch[6] = p.MaxHopLimit
	ch[7] = 0 // reserved
	// Extended header.
	ext := out[basicHeaderLen+commonHeaderLen:]
	lpv := p.Source.Marshal()
	switch p.Type {
	case HeaderTypeTSB, HeaderTypeBeacon:
		copy(ext[0:LPVLen], lpv[:])
		// TSB: 4 reserved bytes follow; beacon: nothing.
	case HeaderTypeGBC:
		binary.BigEndian.PutUint16(ext[0:2], p.SequenceNumber)
		// 2 reserved bytes.
		copy(ext[4:4+LPVLen], lpv[:])
		p.DestArea.marshalTo(ext[4+LPVLen : 4+LPVLen+areaWireLen])
		// 2 reserved bytes close the header.
	}
	copy(out[basicHeaderLen+commonHeaderLen+extLen:], p.Payload)
	return out, nil
}

// Unmarshal parses wire bytes into a packet. The payload is copied so
// the caller may reuse the buffer.
func Unmarshal(data []byte) (*Packet, error) {
	if len(data) < basicHeaderLen+commonHeaderLen {
		return nil, fmt.Errorf("%w: %d bytes", ErrMalformed, len(data))
	}
	var p Packet
	p.Version = data[0] >> 4
	if nh := data[0] & 0xf; nh != basicNextCommon {
		return nil, fmt.Errorf("%w: basic next header %d", ErrMalformed, nh)
	}
	p.Lifetime = Lifetime{Multiplier: data[2] >> 2, Base: data[2] & 3}
	p.RemainingHopLimit = data[3]
	ch := data[basicHeaderLen:]
	p.Next = NextHeader(ch[0] >> 4)
	p.Type = HeaderType(ch[1] >> 4)
	p.Subtype = ch[1] & 0xf
	p.TrafficClass = TrafficClass(ch[2])
	payloadLen := int(binary.BigEndian.Uint16(ch[4:6]))
	p.MaxHopLimit = ch[6]
	ext := data[basicHeaderLen+commonHeaderLen:]
	var extLen int
	switch p.Type {
	case HeaderTypeBeacon:
		extLen = beaconExtLen
		if len(ext) < extLen {
			return nil, fmt.Errorf("%w: beacon header truncated", ErrMalformed)
		}
		lpv, err := UnmarshalLPV(ext[0:LPVLen])
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		p.Source = lpv
	case HeaderTypeTSB:
		if p.Subtype != SubtypeSHB {
			return nil, fmt.Errorf("%w: TSB subtype %d", ErrMalformed, p.Subtype)
		}
		extLen = shbExtLen
		if len(ext) < extLen {
			return nil, fmt.Errorf("%w: SHB header truncated", ErrMalformed)
		}
		lpv, err := UnmarshalLPV(ext[0:LPVLen])
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		p.Source = lpv
	case HeaderTypeGBC:
		extLen = gbcExtLen
		if len(ext) < extLen {
			return nil, fmt.Errorf("%w: GBC header truncated", ErrMalformed)
		}
		p.SequenceNumber = binary.BigEndian.Uint16(ext[0:2])
		lpv, err := UnmarshalLPV(ext[4 : 4+LPVLen])
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		p.Source = lpv
		area, err := unmarshalArea(AreaShape(p.Subtype), ext[4+LPVLen:4+LPVLen+areaWireLen])
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		p.DestArea = area
	default:
		return nil, fmt.Errorf("%w: header type %d", ErrMalformed, p.Type)
	}
	body := ext[extLen:]
	if len(body) < payloadLen {
		return nil, fmt.Errorf("%w: payload %d/%d bytes", ErrMalformed, len(body), payloadLen)
	}
	p.Payload = make([]byte, payloadLen)
	copy(p.Payload, body[:payloadLen])
	return &p, nil
}

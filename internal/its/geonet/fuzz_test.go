package geonet

import (
	"math/rand"
	"testing"
	"testing/quick"

	"itsbed/internal/geo"
)

func TestUnmarshalNeverPanics(t *testing.T) {
	f := func(data []byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("Unmarshal panicked on %x: %v", data, r)
				ok = false
			}
		}()
		_, _ = Unmarshal(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Fatal(err)
	}
}

func TestRouterOnFrameNeverPanics(t *testing.T) {
	r, _ := testRouter(t, 9, geo.Point{}, nil)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 2000; i++ {
		frame := make([]byte, rng.Intn(80))
		rng.Read(frame)
		r.OnFrame(frame) // must not panic
	}
}

// FuzzUnmarshal drives the GN packet decoder with arbitrary frames:
// it must reject malformed input with an error, never panic. Run
// continuously in CI (fuzz-smoke job) and at will with
//
//	go test -run='^$' -fuzz=FuzzUnmarshal ./internal/its/geonet
func FuzzUnmarshal(f *testing.F) {
	p := &Packet{
		Version: CurrentVersion, Lifetime: DefaultLifetime, RemainingHopLimit: 5,
		Next: NextBTPB, Type: HeaderTypeGBC, MaxHopLimit: 5,
		Source:         LongPositionVector{Address: NewAddress(1, 1)},
		SequenceNumber: 3,
		DestArea:       Area{Shape: ShapeCircle, DistanceA: 100},
		Payload:        []byte("denm-bytes"),
	}
	if seed, err := p.Marshal(); err == nil {
		f.Add(seed)
	}
	shb := &Packet{
		Version: CurrentVersion, Lifetime: Lifetime{Multiplier: 1, Base: 1},
		RemainingHopLimit: 1, Next: NextBTPB, Type: HeaderTypeTSB, Subtype: SubtypeSHB,
		MaxHopLimit: 1, Source: LongPositionVector{Address: NewAddress(5, 2001)},
		Payload: []byte("cam-bytes"),
	}
	if seed, err := shb.Marshal(); err == nil {
		f.Add(seed)
	}
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Unmarshal must not panic; errors are the expected outcome for
		// arbitrary bytes (these frames arrive from the air).
		_, _ = Unmarshal(data)
	})
}

func TestUnmarshalMutatedPacket(t *testing.T) {
	p := &Packet{
		Version: CurrentVersion, Lifetime: DefaultLifetime, RemainingHopLimit: 5,
		Next: NextBTPB, Type: HeaderTypeGBC, MaxHopLimit: 5,
		Source:         LongPositionVector{Address: NewAddress(1, 1)},
		SequenceNumber: 3,
		DestArea:       Area{Shape: ShapeCircle, DistanceA: 100},
		Payload:        []byte("denm-bytes"),
	}
	base, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 5000; i++ {
		mutated := make([]byte, len(base))
		copy(mutated, base)
		pos := rng.Intn(len(mutated) * 8)
		mutated[pos/8] ^= 1 << (7 - uint(pos%8))
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on mutation %x: %v", mutated, r)
				}
			}()
			_, _ = Unmarshal(mutated)
		}()
	}
}

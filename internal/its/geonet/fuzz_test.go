package geonet

import (
	"math/rand"
	"testing"
	"testing/quick"

	"itsbed/internal/geo"
)

func TestUnmarshalNeverPanics(t *testing.T) {
	f := func(data []byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("Unmarshal panicked on %x: %v", data, r)
				ok = false
			}
		}()
		_, _ = Unmarshal(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Fatal(err)
	}
}

func TestRouterOnFrameNeverPanics(t *testing.T) {
	r, _ := testRouter(t, 9, geo.Point{}, nil)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 2000; i++ {
		frame := make([]byte, rng.Intn(80))
		rng.Read(frame)
		r.OnFrame(frame) // must not panic
	}
}

func TestUnmarshalMutatedPacket(t *testing.T) {
	p := &Packet{
		Version: CurrentVersion, Lifetime: DefaultLifetime, RemainingHopLimit: 5,
		Next: NextBTPB, Type: HeaderTypeGBC, MaxHopLimit: 5,
		Source:         LongPositionVector{Address: NewAddress(1, 1)},
		SequenceNumber: 3,
		DestArea:       Area{Shape: ShapeCircle, DistanceA: 100},
		Payload:        []byte("denm-bytes"),
	}
	base, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 5000; i++ {
		mutated := make([]byte, len(base))
		copy(mutated, base)
		pos := rng.Intn(len(mutated) * 8)
		mutated[pos/8] ^= 1 << (7 - uint(pos%8))
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on mutation %x: %v", mutated, r)
				}
			}()
			_, _ = Unmarshal(mutated)
		}()
	}
}

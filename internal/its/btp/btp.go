// Package btp implements the ETSI Basic Transport Protocol
// (EN 302 636-5-1). BTP is a thin multiplexing layer between the
// facilities services and GeoNetworking: a 4-byte header carrying
// destination (and, for BTP-A, source) ports. The testbed uses BTP-B
// with the well-known ports for the CA and DEN services, exactly as
// OpenC2X does.
package btp

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Well-known BTP ports (ETSI TS 103 248).
const (
	PortCAM  uint16 = 2001
	PortDENM uint16 = 2002
	PortMAP  uint16 = 2003
	PortSPAT uint16 = 2004
	PortIVI  uint16 = 2006
	PortCPM  uint16 = 2009
)

// HeaderLen is the encoded size of a BTP header in bytes.
const HeaderLen = 4

// Type distinguishes the two BTP header variants.
type Type uint8

// BTP header variants.
const (
	// TypeA is the interactive variant: destination and source port.
	TypeA Type = 1
	// TypeB is the non-interactive variant used for broadcast
	// facilities messages: destination port and port info.
	TypeB Type = 2
)

// Header is a BTP-A or BTP-B header.
type Header struct {
	Type Type
	// DestinationPort identifies the facilities service.
	DestinationPort uint16
	// SourcePort is used by BTP-A only.
	SourcePort uint16
	// DestinationPortInfo is used by BTP-B only.
	DestinationPortInfo uint16
}

// ErrShort indicates a packet smaller than a BTP header.
var ErrShort = errors.New("btp: packet shorter than header")

// Encode prepends the BTP header to payload, returning a fresh slice.
func Encode(h Header, payload []byte) ([]byte, error) {
	if h.Type != TypeA && h.Type != TypeB {
		return nil, fmt.Errorf("btp: invalid header type %d", h.Type)
	}
	out := make([]byte, HeaderLen+len(payload))
	binary.BigEndian.PutUint16(out[0:2], h.DestinationPort)
	if h.Type == TypeA {
		binary.BigEndian.PutUint16(out[2:4], h.SourcePort)
	} else {
		binary.BigEndian.PutUint16(out[2:4], h.DestinationPortInfo)
	}
	copy(out[HeaderLen:], payload)
	return out, nil
}

// Decode splits a BTP packet into header and payload. The wire format
// does not self-describe the variant; the caller supplies the type the
// GeoNetworking next-header field announced. The returned payload
// aliases data.
func Decode(t Type, data []byte) (Header, []byte, error) {
	if len(data) < HeaderLen {
		return Header{}, nil, fmt.Errorf("%w: %d bytes", ErrShort, len(data))
	}
	h := Header{Type: t, DestinationPort: binary.BigEndian.Uint16(data[0:2])}
	switch t {
	case TypeA:
		h.SourcePort = binary.BigEndian.Uint16(data[2:4])
	case TypeB:
		h.DestinationPortInfo = binary.BigEndian.Uint16(data[2:4])
	default:
		return Header{}, nil, fmt.Errorf("btp: invalid header type %d", t)
	}
	return h, data[HeaderLen:], nil
}

// ServiceName returns a human-readable name for a well-known port.
func ServiceName(port uint16) string {
	switch port {
	case PortCAM:
		return "CA"
	case PortDENM:
		return "DEN"
	case PortMAP:
		return "MAP"
	case PortSPAT:
		return "SPAT"
	case PortIVI:
		return "IVI"
	case PortCPM:
		return "CP"
	default:
		return fmt.Sprintf("port-%d", port)
	}
}

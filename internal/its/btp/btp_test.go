package btp

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeTypeB(t *testing.T) {
	payload := []byte("denm-bytes")
	pkt, err := Encode(Header{Type: TypeB, DestinationPort: PortDENM, DestinationPortInfo: 7}, payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkt) != HeaderLen+len(payload) {
		t.Fatalf("packet length %d", len(pkt))
	}
	h, got, err := Decode(TypeB, pkt)
	if err != nil {
		t.Fatal(err)
	}
	if h.DestinationPort != PortDENM || h.DestinationPortInfo != 7 {
		t.Fatalf("header %+v", h)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload %q", got)
	}
}

func TestEncodeDecodeTypeA(t *testing.T) {
	pkt, err := Encode(Header{Type: TypeA, DestinationPort: PortCAM, SourcePort: 4096}, []byte{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	h, _, err := Decode(TypeA, pkt)
	if err != nil {
		t.Fatal(err)
	}
	if h.SourcePort != 4096 || h.DestinationPort != PortCAM {
		t.Fatalf("header %+v", h)
	}
}

func TestInvalidType(t *testing.T) {
	if _, err := Encode(Header{Type: 9, DestinationPort: 1}, nil); err == nil {
		t.Fatal("invalid type encoded")
	}
	if _, _, err := Decode(Type(9), make([]byte, 8)); err == nil {
		t.Fatal("invalid type decoded")
	}
}

func TestShortPacket(t *testing.T) {
	if _, _, err := Decode(TypeB, []byte{1, 2, 3}); !errors.Is(err, ErrShort) {
		t.Fatalf("err=%v, want ErrShort", err)
	}
}

func TestEmptyPayload(t *testing.T) {
	pkt, err := Encode(Header{Type: TypeB, DestinationPort: PortCAM}, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, payload, err := Decode(TypeB, pkt)
	if err != nil {
		t.Fatal(err)
	}
	if len(payload) != 0 {
		t.Fatalf("payload %v", payload)
	}
}

func TestWellKnownPorts(t *testing.T) {
	if PortCAM != 2001 || PortDENM != 2002 {
		t.Fatal("well-known ports wrong")
	}
	if ServiceName(PortCAM) != "CA" || ServiceName(PortDENM) != "DEN" {
		t.Fatal("service names wrong")
	}
	if ServiceName(9999) != "port-9999" {
		t.Fatalf("unknown port name %q", ServiceName(9999))
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	f := func(dst, info uint16, payload []byte) bool {
		pkt, err := Encode(Header{Type: TypeB, DestinationPort: dst, DestinationPortInfo: info}, payload)
		if err != nil {
			return false
		}
		h, got, err := Decode(TypeB, pkt)
		if err != nil {
			return false
		}
		return h.DestinationPort == dst && h.DestinationPortInfo == info && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeCopiesPayload(t *testing.T) {
	payload := []byte{1, 2, 3}
	pkt, err := Encode(Header{Type: TypeB, DestinationPort: 1}, payload)
	if err != nil {
		t.Fatal(err)
	}
	payload[0] = 99
	if pkt[HeaderLen] != 1 {
		t.Fatal("Encode aliases the caller's payload")
	}
}

package messages

import (
	"bytes"
	"encoding/hex"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"itsbed/internal/units"
)

// -update re-pins the golden wire bytes. Only run it deliberately: the
// goldens exist to prove encoder refactors (buffer pooling, chunked bit
// writes) never change a single bit on the simulated air interface.
var updateGolden = flag.Bool("update", false, "rewrite golden wire-byte files")

type goldenCase struct {
	name   string
	encode func() ([]byte, error)
}

func goldenCases() []goldenCase {
	return []goldenCase{
		{"cam_basic", func() ([]byte, error) { return sampleCAM().Encode() }},
		{"cam_lowfreq", func() ([]byte, error) {
			cam := sampleCAM()
			cam.LowFrequency = &BasicVehicleContainerLowFrequency{
				VehicleRole:    VehicleRoleEmergency,
				ExteriorLights: 0b10100000,
				PathHistory: []PathPoint{
					{DeltaLatitude: 100, DeltaLongitude: -200, DeltaTime: 10},
					{DeltaLatitude: -131071, DeltaLongitude: 131072, DeltaTime: 65535},
				},
			}
			return cam.Encode()
		}},
		{"denm_full", func() ([]byte, error) { return sampleDENM().Encode() }},
		{"denm_minimal", func() ([]byte, error) {
			d := NewDENM(1001)
			d.Management = ManagementContainer{
				ActionID:      ActionID{OriginatingStationID: 1001, SequenceNumber: 1},
				DetectionTime: 1,
				ReferenceTime: 1,
				EventPosition: ReferencePosition{AltitudeValue: AltitudeUnavailable},
				StationType:   units.StationTypeRoadSideUnit,
			}
			return d.Encode()
		}},
		{"denm_termination", func() ([]byte, error) {
			d := sampleDENM()
			term := TerminationIsCancellation
			d.Management.Termination = &term
			return d.Encode()
		}},
		{"cpm_basic", func() ([]byte, error) { return sampleCPM().Encode() }},
		{"cpm_empty", func() ([]byte, error) {
			c := sampleCPM()
			c.PerceivedObjects = nil
			return c.Encode()
		}},
		{"cpm_boundary", func() ([]byte, error) {
			c := sampleCPM()
			c.PerceivedObjects = []PerceivedObject{{
				ObjectID:          65535,
				TimeOfMeasurement: TimeOfMeasurementMin,
				XDistance:         ObjectDistanceMax,
				YDistance:         ObjectDistanceMin,
				XSpeed:            ObjectSpeedMax,
				YSpeed:            ObjectSpeedMin,
				Class:             ObjectClassOther,
				Confidence:        ConfidenceUnavailable,
			}}
			return c.Encode()
		}},
	}
}

// TestGoldenWireBytes pins the exact UPER bytes of representative CAM
// and DENM messages. Any encoder change that alters the wire format —
// intentional or not — fails here; buffer-reuse optimisations must
// reproduce these bytes bit-for-bit.
func TestGoldenWireBytes(t *testing.T) {
	for _, tc := range goldenCases() {
		t.Run(tc.name, func(t *testing.T) {
			got, err := tc.encode()
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			path := filepath.Join("testdata", tc.name+".hex")
			if *updateGolden {
				if err := os.WriteFile(path, []byte(hex.EncodeToString(got)+"\n"), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read golden (run with -update to pin): %v", err)
			}
			want, err := hex.DecodeString(strings.TrimSpace(string(raw)))
			if err != nil {
				t.Fatalf("corrupt golden %s: %v", path, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("wire bytes changed:\n got %s\nwant %s",
					hex.EncodeToString(got), hex.EncodeToString(want))
			}
		})
	}
}

// TestGoldenWireBytesStableAcrossRepeats encodes each golden fixture
// many times in a row — through any pooled writers the encoder keeps —
// and checks every repetition is byte-identical. This is the
// pooled-buffer reuse boundary the refactor must not disturb.
func TestGoldenWireBytesStableAcrossRepeats(t *testing.T) {
	for _, tc := range goldenCases() {
		t.Run(tc.name, func(t *testing.T) {
			first, err := tc.encode()
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			for i := 0; i < 64; i++ {
				again, err := tc.encode()
				if err != nil {
					t.Fatalf("encode #%d: %v", i+2, err)
				}
				if !bytes.Equal(first, again) {
					t.Fatalf("encode #%d differs from first:\n got %s\nwant %s",
						i+2, hex.EncodeToString(again), hex.EncodeToString(first))
				}
			}
		})
	}
}

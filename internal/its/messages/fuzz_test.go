package messages

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Decoders must reject arbitrary input with an error, never panic:
// these payloads arrive from the air.

func neverPanics(t *testing.T, name string, decode func([]byte)) {
	t.Helper()
	f := func(data []byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("%s panicked on %x: %v", name, data, r)
				ok = false
			}
		}()
		decode(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(99))}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeCAMNeverPanics(t *testing.T) {
	neverPanics(t, "DecodeCAM", func(b []byte) { _, _ = DecodeCAM(b) })
}

func TestDecodeDENMNeverPanics(t *testing.T) {
	neverPanics(t, "DecodeDENM", func(b []byte) { _, _ = DecodeDENM(b) })
}

func TestPeekNeverPanics(t *testing.T) {
	neverPanics(t, "Peek", func(b []byte) { _, _, _ = Peek(b) })
}

// FuzzDecodeDENM drives the UPER DENM decoder with arbitrary bytes.
// The invariant (also pinned by TestDecodeMutatedDENM): decoding never
// panics, and any accepted decode re-encodes without error. Run
// continuously in CI (fuzz-smoke job) and at will with
//
//	go test -run='^$' -fuzz=FuzzDecodeDENM ./internal/its/messages
func FuzzDecodeDENM(f *testing.F) {
	if seed, err := sampleDENM().Encode(); err == nil {
		f.Add(seed)
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := DecodeDENM(data)
		if err != nil {
			return
		}
		if _, err := d.Encode(); err != nil {
			t.Fatalf("accepted decode produced unencodable DENM: %v", err)
		}
	})
}

// FuzzDecodeCAM is the CAM counterpart of FuzzDecodeDENM.
func FuzzDecodeCAM(f *testing.F) {
	cam := sampleCAM()
	cam.LowFrequency = &BasicVehicleContainerLowFrequency{
		PathHistory: []PathPoint{{DeltaLatitude: 1, DeltaLongitude: 1, DeltaTime: 1}},
	}
	if seed, err := cam.Encode(); err == nil {
		f.Add(seed)
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := DecodeCAM(data)
		if err != nil {
			return
		}
		if _, err := c.Encode(); err != nil {
			t.Fatalf("accepted decode produced unencodable CAM: %v", err)
		}
	})
}

// TestDecodeMutatedDENM flips bits in a valid encoding: every mutation
// must either decode cleanly or fail with an error — no panics, no
// invalid field ranges slipping through unnoticed.
func TestDecodeMutatedDENM(t *testing.T) {
	base, err := sampleDENM().Encode()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(100))
	for i := 0; i < 5000; i++ {
		mutated := make([]byte, len(base))
		copy(mutated, base)
		// Flip 1-3 random bits.
		for n := 0; n < 1+rng.Intn(3); n++ {
			pos := rng.Intn(len(mutated) * 8)
			mutated[pos/8] ^= 1 << (7 - uint(pos%8))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on mutation %x: %v", mutated, r)
				}
			}()
			if d, err := DecodeDENM(mutated); err == nil {
				// Accepted decodes must re-encode without error (the
				// struct is internally consistent).
				if _, err := d.Encode(); err != nil {
					t.Fatalf("mutated decode produced unencodable DENM: %v", err)
				}
			}
		}()
	}
}

func TestDecodeMutatedCAM(t *testing.T) {
	cam := sampleCAM()
	cam.LowFrequency = &BasicVehicleContainerLowFrequency{
		PathHistory: []PathPoint{{DeltaLatitude: 1, DeltaLongitude: 1, DeltaTime: 1}},
	}
	base, err := cam.Encode()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(101))
	for i := 0; i < 5000; i++ {
		mutated := make([]byte, len(base))
		copy(mutated, base)
		pos := rng.Intn(len(mutated) * 8)
		mutated[pos/8] ^= 1 << (7 - uint(pos%8))
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on mutation %x: %v", mutated, r)
				}
			}()
			if c, err := DecodeCAM(mutated); err == nil {
				if _, err := c.Encode(); err != nil {
					t.Fatalf("mutated decode produced unencodable CAM: %v", err)
				}
			}
		}()
	}
}

package messages

import (
	"fmt"

	"itsbed/internal/asn1per"
	"itsbed/internal/units"
)

// CAM is a Cooperative Awareness Message (EN 302 637-2). The testbed's
// OBUs broadcast CAMs cyclically so the road-side LDM tracks the
// protagonist vehicle's state.
type CAM struct {
	Header              ItsPduHeader
	GenerationDeltaTime units.DeltaTime
	Basic               BasicContainer
	HighFrequency       BasicVehicleContainerHighFrequency
	// LowFrequency is present in every n-th CAM per the generation
	// rules (at most every 500 ms).
	LowFrequency *BasicVehicleContainerLowFrequency
}

// BasicContainer carries the station type and reference position.
type BasicContainer struct {
	StationType units.StationType
	Position    ReferencePosition
}

// DriveDirection per the ETSI common data dictionary.
type DriveDirection uint8

// Drive directions.
const (
	DriveDirectionForward     DriveDirection = 0
	DriveDirectionBackward    DriveDirection = 1
	DriveDirectionUnavailable DriveDirection = 2
)

// BasicVehicleContainerHighFrequency carries the fast-changing vehicle
// dynamics.
type BasicVehicleContainerHighFrequency struct {
	Heading           units.Heading
	HeadingConfidence uint8 // 1..127, 126=outOfRange, 127=unavailable
	Speed             units.Speed
	SpeedConfidence   uint8 // 1..127
	DriveDirection    DriveDirection
	// VehicleLength in 0.1 m units (1..1023, 1023=unavailable).
	VehicleLength uint16
	// VehicleWidth in 0.1 m units (1..62, 62=unavailable).
	VehicleWidth uint8
	// LongitudinalAcceleration in 0.1 m/s² (-160..161, 161=unavailable).
	LongitudinalAcceleration int16
	AccelerationConfidence   uint8 // 0..102
	Curvature                units.Curvature
	// YawRate in 0.01 °/s (-32766..32767, 32767=unavailable).
	YawRate int32
}

// VehicleRole per the ETSI common data dictionary (subset).
type VehicleRole uint8

// Vehicle roles used by the testbed.
const (
	VehicleRoleDefault          VehicleRole = 0
	VehicleRolePublicTransport  VehicleRole = 1
	VehicleRoleSpecialTransport VehicleRole = 2
	VehicleRoleDangerousGoods   VehicleRole = 3
	VehicleRoleRoadWork         VehicleRole = 4
	VehicleRoleRescue           VehicleRole = 5
	VehicleRoleEmergency        VehicleRole = 6
	VehicleRoleSafetyCar        VehicleRole = 7
)

const vehicleRoleCount = 16

// PathPoint is one entry of a path history.
type PathPoint struct {
	// Delta coordinates in 0.1 microdegree units relative to the
	// reference position (-131071..131072).
	DeltaLatitude  int32
	DeltaLongitude int32
	// DeltaTime in 10 ms units (1..65535), 0 when unavailable.
	DeltaTime uint16
}

// BasicVehicleContainerLowFrequency carries slow-changing state.
type BasicVehicleContainerLowFrequency struct {
	VehicleRole    VehicleRole
	ExteriorLights uint8 // bit string of 8 lamps
	PathHistory    []PathPoint
}

// maxPathPoints bounds a path history per EN 302 637-2 (0..40).
const maxPathPoints = 40

// NewCAM builds a CAM with the header filled in.
func NewCAM(station units.StationID, delta units.DeltaTime) *CAM {
	return &CAM{
		Header: ItsPduHeader{
			ProtocolVersion: CurrentProtocolVersion,
			MessageID:       MessageIDCAM,
			StationID:       station,
		},
		GenerationDeltaTime: delta,
	}
}

// Encode serialises the CAM to UPER bytes.
func (c *CAM) Encode() ([]byte, error) {
	if c == nil {
		return nil, errNilMessage
	}
	w := asn1per.GetWriter()
	defer asn1per.PutWriter(w)
	if err := c.Header.encode(w); err != nil {
		return nil, fmt.Errorf("messages: CAM header: %w", err)
	}
	if err := w.WriteConstrainedInt(int64(c.GenerationDeltaTime), 0, 65535); err != nil {
		return nil, fmt.Errorf("messages: generationDeltaTime: %w", err)
	}
	// camParameters presence bitmap: lowFrequencyContainer OPTIONAL.
	w.WriteBool(c.LowFrequency != nil)
	if err := c.Basic.encode(w); err != nil {
		return nil, fmt.Errorf("messages: basicContainer: %w", err)
	}
	if err := c.HighFrequency.encode(w); err != nil {
		return nil, fmt.Errorf("messages: highFrequencyContainer: %w", err)
	}
	if c.LowFrequency != nil {
		if err := c.LowFrequency.encode(w); err != nil {
			return nil, fmt.Errorf("messages: lowFrequencyContainer: %w", err)
		}
	}
	return w.Bytes(), nil
}

// DecodeCAM parses a UPER-encoded CAM.
func DecodeCAM(data []byte) (*CAM, error) {
	var rd asn1per.Reader
	rd.Reset(data)
	r := &rd
	h, err := decodeHeader(r)
	if err != nil {
		return nil, fmt.Errorf("messages: CAM header: %w", err)
	}
	if h.MessageID != MessageIDCAM {
		return nil, fmt.Errorf("messages: not a CAM (messageID %d)", h.MessageID)
	}
	c := &CAM{Header: h}
	v, err := r.ReadConstrainedInt(0, 65535)
	if err != nil {
		return nil, fmt.Errorf("messages: generationDeltaTime: %w", err)
	}
	c.GenerationDeltaTime = units.DeltaTime(v)
	hasLF, err := r.ReadBool()
	if err != nil {
		return nil, fmt.Errorf("messages: camParameters bitmap: %w", err)
	}
	if c.Basic, err = decodeBasicContainer(r); err != nil {
		return nil, fmt.Errorf("messages: basicContainer: %w", err)
	}
	if c.HighFrequency, err = decodeHighFrequency(r); err != nil {
		return nil, fmt.Errorf("messages: highFrequencyContainer: %w", err)
	}
	if hasLF {
		lf, err := decodeLowFrequency(r)
		if err != nil {
			return nil, fmt.Errorf("messages: lowFrequencyContainer: %w", err)
		}
		c.LowFrequency = &lf
	}
	return c, nil
}

func (b BasicContainer) encode(w *asn1per.Writer) error {
	if err := w.WriteConstrainedInt(int64(b.StationType), 0, 255); err != nil {
		return fmt.Errorf("stationType: %w", err)
	}
	return b.Position.encode(w)
}

func decodeBasicContainer(r *asn1per.Reader) (BasicContainer, error) {
	var b BasicContainer
	v, err := r.ReadConstrainedInt(0, 255)
	if err != nil {
		return b, fmt.Errorf("stationType: %w", err)
	}
	b.StationType = units.StationType(v)
	b.Position, err = decodeReferencePosition(r)
	return b, err
}

func (hf BasicVehicleContainerHighFrequency) encode(w *asn1per.Writer) error {
	// Straight-line field list (no table of closures): this runs for
	// every CAM the fleet generates at 10 Hz, so it must not allocate.
	if err := w.WriteConstrainedInt(int64(hf.Heading), 0, 3601); err != nil {
		return fmt.Errorf("heading: %w", err)
	}
	if err := w.WriteConstrainedInt(int64(hf.HeadingConfidence), 1, 127); err != nil {
		return fmt.Errorf("headingConfidence: %w", err)
	}
	if err := w.WriteConstrainedInt(int64(hf.Speed), 0, 16383); err != nil {
		return fmt.Errorf("speed: %w", err)
	}
	if err := w.WriteConstrainedInt(int64(hf.SpeedConfidence), 1, 127); err != nil {
		return fmt.Errorf("speedConfidence: %w", err)
	}
	if err := w.WriteConstrainedInt(int64(hf.DriveDirection), 0, 2); err != nil {
		return fmt.Errorf("driveDirection: %w", err)
	}
	if err := w.WriteConstrainedInt(int64(hf.VehicleLength), 1, 1023); err != nil {
		return fmt.Errorf("vehicleLength: %w", err)
	}
	if err := w.WriteConstrainedInt(int64(hf.VehicleWidth), 1, 62); err != nil {
		return fmt.Errorf("vehicleWidth: %w", err)
	}
	if err := w.WriteConstrainedInt(int64(hf.LongitudinalAcceleration), -160, 161); err != nil {
		return fmt.Errorf("longitudinalAcceleration: %w", err)
	}
	if err := w.WriteConstrainedInt(int64(hf.AccelerationConfidence), 0, 102); err != nil {
		return fmt.Errorf("accelerationConfidence: %w", err)
	}
	if err := w.WriteConstrainedInt(int64(hf.Curvature), -1023, 1023); err != nil {
		return fmt.Errorf("curvature: %w", err)
	}
	if err := w.WriteConstrainedInt(int64(hf.YawRate), -32766, 32767); err != nil {
		return fmt.Errorf("yawRate: %w", err)
	}
	return nil
}

func decodeHighFrequency(r *asn1per.Reader) (BasicVehicleContainerHighFrequency, error) {
	var hf BasicVehicleContainerHighFrequency
	v, err := r.ReadConstrainedInt(0, 3601)
	if err != nil {
		return hf, fmt.Errorf("heading: %w", err)
	}
	hf.Heading = units.Heading(v)
	if v, err = r.ReadConstrainedInt(1, 127); err != nil {
		return hf, fmt.Errorf("headingConfidence: %w", err)
	}
	hf.HeadingConfidence = uint8(v)
	if v, err = r.ReadConstrainedInt(0, 16383); err != nil {
		return hf, fmt.Errorf("speed: %w", err)
	}
	hf.Speed = units.Speed(v)
	if v, err = r.ReadConstrainedInt(1, 127); err != nil {
		return hf, fmt.Errorf("speedConfidence: %w", err)
	}
	hf.SpeedConfidence = uint8(v)
	if v, err = r.ReadConstrainedInt(0, 2); err != nil {
		return hf, fmt.Errorf("driveDirection: %w", err)
	}
	hf.DriveDirection = DriveDirection(v)
	if v, err = r.ReadConstrainedInt(1, 1023); err != nil {
		return hf, fmt.Errorf("vehicleLength: %w", err)
	}
	hf.VehicleLength = uint16(v)
	if v, err = r.ReadConstrainedInt(1, 62); err != nil {
		return hf, fmt.Errorf("vehicleWidth: %w", err)
	}
	hf.VehicleWidth = uint8(v)
	if v, err = r.ReadConstrainedInt(-160, 161); err != nil {
		return hf, fmt.Errorf("longitudinalAcceleration: %w", err)
	}
	hf.LongitudinalAcceleration = int16(v)
	if v, err = r.ReadConstrainedInt(0, 102); err != nil {
		return hf, fmt.Errorf("accelerationConfidence: %w", err)
	}
	hf.AccelerationConfidence = uint8(v)
	if v, err = r.ReadConstrainedInt(-1023, 1023); err != nil {
		return hf, fmt.Errorf("curvature: %w", err)
	}
	hf.Curvature = units.Curvature(v)
	if v, err = r.ReadConstrainedInt(-32766, 32767); err != nil {
		return hf, fmt.Errorf("yawRate: %w", err)
	}
	hf.YawRate = int32(v)
	return hf, nil
}

func (lf BasicVehicleContainerLowFrequency) encode(w *asn1per.Writer) error {
	if err := w.WriteEnumerated(int(lf.VehicleRole), vehicleRoleCount); err != nil {
		return fmt.Errorf("vehicleRole: %w", err)
	}
	if err := w.WriteBitString([]byte{lf.ExteriorLights}, 8); err != nil {
		return fmt.Errorf("exteriorLights: %w", err)
	}
	if len(lf.PathHistory) > maxPathPoints {
		return fmt.Errorf("%w: pathHistory of %d points", asn1per.ErrRange, len(lf.PathHistory))
	}
	if err := w.WriteLength(len(lf.PathHistory), 0, maxPathPoints); err != nil {
		return fmt.Errorf("pathHistory length: %w", err)
	}
	for i, p := range lf.PathHistory {
		if err := p.encode(w); err != nil {
			return fmt.Errorf("pathHistory[%d]: %w", i, err)
		}
	}
	return nil
}

func decodeLowFrequency(r *asn1per.Reader) (BasicVehicleContainerLowFrequency, error) {
	var lf BasicVehicleContainerLowFrequency
	role, err := r.ReadEnumerated(vehicleRoleCount)
	if err != nil {
		return lf, fmt.Errorf("vehicleRole: %w", err)
	}
	lf.VehicleRole = VehicleRole(role)
	lights, err := r.ReadBits(8)
	if err != nil {
		return lf, fmt.Errorf("exteriorLights: %w", err)
	}
	lf.ExteriorLights = uint8(lights)
	n, err := r.ReadLength(0, maxPathPoints)
	if err != nil {
		return lf, fmt.Errorf("pathHistory length: %w", err)
	}
	if n > 0 {
		lf.PathHistory = make([]PathPoint, n)
		for i := range lf.PathHistory {
			lf.PathHistory[i], err = decodePathPoint(r)
			if err != nil {
				return lf, fmt.Errorf("pathHistory[%d]: %w", i, err)
			}
		}
	}
	return lf, nil
}

func (p PathPoint) encode(w *asn1per.Writer) error {
	if err := w.WriteConstrainedInt(int64(p.DeltaLatitude), -131071, 131072); err != nil {
		return fmt.Errorf("deltaLatitude: %w", err)
	}
	if err := w.WriteConstrainedInt(int64(p.DeltaLongitude), -131071, 131072); err != nil {
		return fmt.Errorf("deltaLongitude: %w", err)
	}
	return w.WriteConstrainedInt(int64(p.DeltaTime), 0, 65535)
}

func decodePathPoint(r *asn1per.Reader) (PathPoint, error) {
	var p PathPoint
	v, err := r.ReadConstrainedInt(-131071, 131072)
	if err != nil {
		return p, fmt.Errorf("deltaLatitude: %w", err)
	}
	p.DeltaLatitude = int32(v)
	v, err = r.ReadConstrainedInt(-131071, 131072)
	if err != nil {
		return p, fmt.Errorf("deltaLongitude: %w", err)
	}
	p.DeltaLongitude = int32(v)
	v, err = r.ReadConstrainedInt(0, 65535)
	if err != nil {
		return p, fmt.Errorf("deltaTime: %w", err)
	}
	p.DeltaTime = uint16(v)
	return p, nil
}

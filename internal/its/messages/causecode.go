package messages

import (
	"fmt"
	"sort"
)

// CauseCode is the direct cause code of a DENM event type (EN 302
// 637-3 Table 10; the paper's Table I reproduces a subset).
type CauseCode uint8

// SubCauseCode refines a CauseCode.
type SubCauseCode uint8

// Direct cause codes from EN 302 637-3.
const (
	CauseReserved                           CauseCode = 0
	CauseTrafficCondition                   CauseCode = 1
	CauseAccident                           CauseCode = 2
	CauseRoadworks                          CauseCode = 3
	CauseImpassability                      CauseCode = 5
	CauseAdverseWeatherAdhesion             CauseCode = 6
	CauseAquaplaning                        CauseCode = 7
	CauseHazardousLocationSurfaceCondition  CauseCode = 9
	CauseHazardousLocationObstacleOnTheRoad CauseCode = 10
	CauseHazardousLocationAnimalOnTheRoad   CauseCode = 11
	CauseHumanPresenceOnTheRoad             CauseCode = 12
	CauseWrongWayDriving                    CauseCode = 14
	CauseRescueAndRecoveryWorkInProgress    CauseCode = 15
	CauseAdverseWeatherExtremeWeather       CauseCode = 17
	CauseAdverseWeatherVisibility           CauseCode = 18
	CauseAdverseWeatherPrecipitation        CauseCode = 19
	CauseSlowVehicle                        CauseCode = 26
	CauseDangerousEndOfQueue                CauseCode = 27
	CauseVehicleBreakdown                   CauseCode = 91
	CausePostCrash                          CauseCode = 92
	CauseHumanProblem                       CauseCode = 93
	CauseStationaryVehicle                  CauseCode = 94
	CauseEmergencyVehicleApproaching        CauseCode = 95
	CauseHazardousLocationDangerousCurve    CauseCode = 96
	CauseCollisionRisk                      CauseCode = 97
	CauseSignalViolation                    CauseCode = 98
	CauseDangerousSituation                 CauseCode = 99
)

// Sub-cause codes for CauseCollisionRisk (97), the code the testbed's
// hazard advertisement service uses to warn of an imminent collision.
const (
	CollisionRiskUnavailable        SubCauseCode = 0
	CollisionRiskLongitudinal       SubCauseCode = 1
	CollisionRiskCrossing           SubCauseCode = 2
	CollisionRiskLateral            SubCauseCode = 3
	CollisionRiskVulnerableRoadUser SubCauseCode = 4
)

// Sub-cause codes for CauseDangerousSituation (99).
const (
	DangerousSituationUnavailable          SubCauseCode = 0
	DangerousSituationEmergencyBrakeLights SubCauseCode = 1
	DangerousSituationPreCrashSystem       SubCauseCode = 2
	DangerousSituationESPActivated         SubCauseCode = 3
	DangerousSituationABSActivated         SubCauseCode = 4
	DangerousSituationAEBActivated         SubCauseCode = 5
	DangerousSituationBrakeWarning         SubCauseCode = 6
	DangerousSituationCollisionRiskWarning SubCauseCode = 7
)

// Sub-cause codes for CauseStationaryVehicle (94).
const (
	StationaryVehicleUnavailable            SubCauseCode = 0
	StationaryVehicleHumanProblem           SubCauseCode = 1
	StationaryVehicleBreakdown              SubCauseCode = 2
	StationaryVehiclePostCrash              SubCauseCode = 3
	StationaryVehiclePublicStop             SubCauseCode = 4
	StationaryVehicleCarryingDangerousGoods SubCauseCode = 5
)

// CauseInfo describes one direct cause code of the registry.
type CauseInfo struct {
	Code        CauseCode
	Description string
	// SubCauses maps defined sub-cause codes to their descriptions.
	// Sub-cause 0 is always "unavailable".
	SubCauses map[SubCauseCode]string
}

var causeRegistry = map[CauseCode]CauseInfo{
	CauseReserved: {CauseReserved, "reserved", nil},
	CauseTrafficCondition: {CauseTrafficCondition, "trafficCondition", map[SubCauseCode]string{
		0: "unavailable", 1: "increasedVolumeOfTraffic", 2: "trafficJamSlowlyIncreasing",
		3: "trafficJamIncreasing", 4: "trafficJamStronglyIncreasing", 5: "trafficStationary",
		6: "trafficJamSlightlyDecreasing", 7: "trafficJamDecreasing", 8: "trafficJamStronglyDecreasing",
	}},
	CauseAccident: {CauseAccident, "accident", map[SubCauseCode]string{
		0: "unavailable", 1: "multiVehicleAccident", 2: "heavyAccident",
		3: "accidentInvolvingLorry", 4: "accidentInvolvingBus", 5: "accidentInvolvingHazardousMaterials",
		6: "accidentOnOppositeLane", 7: "unsecuredAccident", 8: "assistanceRequested",
	}},
	CauseRoadworks: {CauseRoadworks, "roadworks", map[SubCauseCode]string{
		0: "unavailable", 1: "majorRoadworks", 2: "roadMarkingWork", 3: "slowMovingRoadMaintenance",
		4: "shortTermStationaryRoadworks", 5: "streetCleaning", 6: "winterService",
	}},
	CauseImpassability: {CauseImpassability, "impassability", map[SubCauseCode]string{
		0: "unavailable",
	}},
	CauseAdverseWeatherAdhesion: {CauseAdverseWeatherAdhesion, "adverseWeatherCondition-Adhesion", map[SubCauseCode]string{
		0: "unavailable", 1: "heavyFrostOnRoad", 2: "fuelOnRoad", 3: "mudOnRoad",
		4: "snowOnRoad", 5: "iceOnRoad", 6: "blackIceOnRoad", 7: "oilOnRoad",
		8: "looseChippings", 9: "instantBlackIce", 10: "roadsSalted",
	}},
	CauseAquaplaning: {CauseAquaplaning, "aquaplaning", map[SubCauseCode]string{
		0: "unavailable",
	}},
	CauseHazardousLocationSurfaceCondition: {CauseHazardousLocationSurfaceCondition, "hazardousLocation-SurfaceCondition", map[SubCauseCode]string{
		0: "unavailable", 1: "rockfalls", 2: "earthquakeDamage", 3: "sewerCollapse",
		4: "subsidence", 5: "snowDrifts", 6: "stormDamage", 7: "burstPipe",
		8: "volcanoEruption", 9: "fallingIce",
	}},
	CauseHazardousLocationObstacleOnTheRoad: {CauseHazardousLocationObstacleOnTheRoad, "hazardousLocation-ObstacleOnTheRoad", map[SubCauseCode]string{
		0: "unavailable", 1: "shedLoad", 2: "partsOfVehicles", 3: "partsOfTyres",
		4: "bigObjects", 5: "fallenTrees", 6: "hubCaps", 7: "waitingVehicles",
	}},
	CauseHazardousLocationAnimalOnTheRoad: {CauseHazardousLocationAnimalOnTheRoad, "hazardousLocation-AnimalOnTheRoad", map[SubCauseCode]string{
		0: "unavailable", 1: "wildAnimals", 2: "herdOfAnimals", 3: "smallAnimals", 4: "largeAnimals",
	}},
	CauseHumanPresenceOnTheRoad: {CauseHumanPresenceOnTheRoad, "humanPresenceOnTheRoad", map[SubCauseCode]string{
		0: "unavailable", 1: "childrenOnRoadway", 2: "cyclistOnRoadway", 3: "motorcyclistOnRoadway",
	}},
	CauseWrongWayDriving: {CauseWrongWayDriving, "wrongWayDriving", map[SubCauseCode]string{
		0: "unavailable", 1: "wrongLane", 2: "wrongDirection",
	}},
	CauseRescueAndRecoveryWorkInProgress: {CauseRescueAndRecoveryWorkInProgress, "rescueAndRecoveryWorkInProgress", map[SubCauseCode]string{
		0: "unavailable", 1: "emergencyVehicles", 2: "rescueHelicopterLanding",
		3: "policeActivityOngoing", 4: "medicalEmergencyOngoing", 5: "childAbductionInProgress",
	}},
	CauseAdverseWeatherExtremeWeather: {CauseAdverseWeatherExtremeWeather, "adverseWeatherCondition-ExtremeWeatherCondition", map[SubCauseCode]string{
		0: "unavailable", 1: "strongWinds", 2: "damagingHail", 3: "hurricane",
		4: "thunderstorm", 5: "tornado", 6: "blizzard",
	}},
	CauseAdverseWeatherVisibility: {CauseAdverseWeatherVisibility, "adverseWeatherCondition-Visibility", map[SubCauseCode]string{
		0: "unavailable", 1: "fog", 2: "smoke", 3: "heavySnowfall", 4: "heavyRain",
		5: "heavyHail", 6: "lowSunGlare", 7: "sandstorms", 8: "swarmsOfInsects",
	}},
	CauseAdverseWeatherPrecipitation: {CauseAdverseWeatherPrecipitation, "adverseWeatherCondition-Precipitation", map[SubCauseCode]string{
		0: "unavailable", 1: "heavyRain", 2: "heavySnowfall", 3: "softHail",
	}},
	CauseSlowVehicle: {CauseSlowVehicle, "slowVehicle", map[SubCauseCode]string{
		0: "unavailable", 1: "maintenanceVehicle", 2: "vehiclesSlowingToLookAtAccident",
		3: "abnormalLoad", 4: "abnormalWideLoad", 5: "convoy", 6: "snowplough",
		7: "deicing", 8: "saltingVehicles",
	}},
	CauseDangerousEndOfQueue: {CauseDangerousEndOfQueue, "dangerousEndOfQueue", map[SubCauseCode]string{
		0: "unavailable", 1: "suddenEndOfQueue", 2: "queueOverHill", 3: "queueAroundBend", 4: "queueInTunnel",
	}},
	CauseVehicleBreakdown: {CauseVehicleBreakdown, "vehicleBreakdown", map[SubCauseCode]string{
		0: "unavailable", 1: "lackOfFuel", 2: "lackOfBatteryPower", 3: "engineProblem",
		4: "transmissionProblem", 5: "engineCoolingProblem", 6: "brakingSystemProblem",
		7: "steeringProblem", 8: "tyrePuncture",
	}},
	CausePostCrash: {CausePostCrash, "postCrash", map[SubCauseCode]string{
		0: "unavailable", 1: "accidentWithoutECallTriggered",
		2: "accidentWithECallManuallyTriggered", 3: "accidentWithECallAutomaticallyTriggered",
		4: "accidentWithECallTriggeredWithoutAccessToCellularNetwork",
	}},
	CauseHumanProblem: {CauseHumanProblem, "humanProblem", map[SubCauseCode]string{
		0: "unavailable", 1: "glycemiaProblem", 2: "heartProblem",
	}},
	CauseStationaryVehicle: {CauseStationaryVehicle, "stationaryVehicle", map[SubCauseCode]string{
		0: "unavailable", 1: "humanProblem", 2: "vehicleBreakdown",
		3: "postCrash", 4: "publicTransportStop", 5: "carryingDangerousGoods",
	}},
	CauseEmergencyVehicleApproaching: {CauseEmergencyVehicleApproaching, "emergencyVehicleApproaching", map[SubCauseCode]string{
		0: "unavailable", 1: "emergencyVehicleApproaching", 2: "prioritizedVehicleApproaching",
	}},
	CauseHazardousLocationDangerousCurve: {CauseHazardousLocationDangerousCurve, "hazardousLocation-DangerousCurve", map[SubCauseCode]string{
		0: "unavailable", 1: "dangerousLeftTurnCurve", 2: "dangerousRightTurnCurve",
		3: "multipleCurvesStartingWithUnknownTurningDirection",
		4: "multipleCurvesStartingWithLeftTurn", 5: "multipleCurvesStartingWithRightTurn",
	}},
	CauseCollisionRisk: {CauseCollisionRisk, "collisionRisk", map[SubCauseCode]string{
		0: "unavailable", 1: "longitudinalCollisionRisk", 2: "crossingCollisionRisk",
		3: "lateralCollisionRisk", 4: "collisionRiskInvolvingVulnerableRoadUser",
	}},
	CauseSignalViolation: {CauseSignalViolation, "signalViolation", map[SubCauseCode]string{
		0: "unavailable", 1: "stopSignViolation", 2: "trafficLightViolation", 3: "turningRegulationViolation",
	}},
	CauseDangerousSituation: {CauseDangerousSituation, "dangerousSituation", map[SubCauseCode]string{
		0: "unavailable", 1: "emergencyElectronicBrakeEngaged", 2: "preCrashSystemEngaged",
		3: "espEngaged", 4: "absEngaged", 5: "aebEngaged",
		6: "brakeWarningEngaged", 7: "collisionRiskWarningEngaged",
	}},
}

// String returns the standard name of the cause code, or "unknown(n)".
func (c CauseCode) String() string {
	if info, ok := causeRegistry[c]; ok {
		return info.Description
	}
	return fmt.Sprintf("unknown(%d)", uint8(c))
}

// Lookup returns the registry entry for a cause code.
func Lookup(c CauseCode) (CauseInfo, bool) {
	info, ok := causeRegistry[c]
	return info, ok
}

// SubCauseDescription returns the standard description of a sub-cause
// code under the given cause, or "unavailable" for unknown values.
func SubCauseDescription(c CauseCode, s SubCauseCode) string {
	if info, ok := causeRegistry[c]; ok {
		if d, ok := info.SubCauses[s]; ok {
			return d
		}
	}
	return "unavailable"
}

// AllCauses returns every registered cause code ordered by code, i.e.
// the full Table-I-style registry.
func AllCauses() []CauseInfo {
	out := make([]CauseInfo, 0, len(causeRegistry))
	for _, info := range causeRegistry {
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Code < out[j].Code })
	return out
}

package messages

import (
	"fmt"

	"itsbed/internal/asn1per"
	"itsbed/internal/units"
)

// CPM is a Collective Perception Message (ETSI TS 103 324 shape): the
// originating station shares the objects its local sensors perceive so
// receivers can extend their environmental model beyond their own
// field of view — the RSU camera telling the approaching OBU about the
// pedestrian it cannot see.
type CPM struct {
	Header              ItsPduHeader
	GenerationDeltaTime units.DeltaTime
	Management          CpmManagementContainer
	// PerceivedObjects is the optional perceived-object container
	// (absent when the station currently perceives nothing).
	PerceivedObjects []PerceivedObject
}

// CpmManagementContainer carries the originating station's type and
// reference position — the anchor every perceived object's relative
// coordinates are measured from.
type CpmManagementContainer struct {
	StationType units.StationType
	Position    ReferencePosition
}

// ObjectClass is the perceived-object classification (a compact subset
// of the TS 103 324 object-class choice).
type ObjectClass uint8

// Object classes.
const (
	ObjectClassUnknown ObjectClass = 0
	ObjectClassVehicle ObjectClass = 1
	ObjectClassPerson  ObjectClass = 2
	ObjectClassAnimal  ObjectClass = 3
	ObjectClassOther   ObjectClass = 4
)

const objectClassCount = 8

// String implements fmt.Stringer.
func (c ObjectClass) String() string {
	switch c {
	case ObjectClassVehicle:
		return "vehicle"
	case ObjectClassPerson:
		return "person"
	case ObjectClassAnimal:
		return "animal"
	case ObjectClassOther:
		return "other"
	default:
		return "unknown"
	}
}

// MaxPerceivedObjects bounds the perceived-object container
// (TS 103 324 allows 1..128 objects per CPM).
const MaxPerceivedObjects = 128

// Perceived-object field ranges.
const (
	// TimeOfMeasurement delta bounds in milliseconds (past negative).
	TimeOfMeasurementMin = -1500
	TimeOfMeasurementMax = 1500
	// ObjectDistanceMin/Max bound the relative coordinates in
	// centimetres (the ETSI DistanceValue range).
	ObjectDistanceMin = -132768
	ObjectDistanceMax = 132767
	// ObjectSpeedMin/Max bound the relative speed components in cm/s.
	ObjectSpeedMin = -16383
	ObjectSpeedMax = 16383
	// ConfidenceUnavailable is the sentinel above the 0..100 percent
	// range.
	ConfidenceUnavailable uint8 = 101
)

// PerceivedObject is one sensed road object, positioned relative to
// the CPM's reference position.
type PerceivedObject struct {
	// ObjectID is the originating station's sensor-assigned identifier,
	// stable across CPMs while the object stays tracked.
	ObjectID uint16
	// TimeOfMeasurement is the measurement's age relative to the CPM
	// generation time, in milliseconds (negative = measured earlier).
	TimeOfMeasurement int16
	// XDistance/YDistance are the object's offset from the reference
	// position in centimetres, east/north on the shared plane.
	XDistance int32
	YDistance int32
	// XSpeed/YSpeed are the object's velocity components in cm/s.
	XSpeed int16
	YSpeed int16
	Class  ObjectClass
	// Confidence in percent (0..100), ConfidenceUnavailable when the
	// sensor reports none.
	Confidence uint8
}

// NewCPM builds a CPM with the header filled in.
func NewCPM(station units.StationID, delta units.DeltaTime) *CPM {
	return &CPM{
		Header: ItsPduHeader{
			ProtocolVersion: CurrentProtocolVersion,
			MessageID:       MessageIDCPM,
			StationID:       station,
		},
		GenerationDeltaTime: delta,
	}
}

// Encode serialises the CPM to UPER bytes.
func (c *CPM) Encode() ([]byte, error) {
	if c == nil {
		return nil, errNilMessage
	}
	w := asn1per.GetWriter()
	defer asn1per.PutWriter(w)
	if err := c.Header.encode(w); err != nil {
		return nil, fmt.Errorf("messages: CPM header: %w", err)
	}
	if err := w.WriteConstrainedInt(int64(c.GenerationDeltaTime), 0, 65535); err != nil {
		return nil, fmt.Errorf("messages: generationDeltaTime: %w", err)
	}
	// cpmParameters presence bitmap: perceivedObjectContainer OPTIONAL.
	w.WriteBool(len(c.PerceivedObjects) > 0)
	if err := c.Management.encode(w); err != nil {
		return nil, fmt.Errorf("messages: managementContainer: %w", err)
	}
	if n := len(c.PerceivedObjects); n > 0 {
		if n > MaxPerceivedObjects {
			return nil, fmt.Errorf("%w: perceivedObjects of %d entries", asn1per.ErrRange, n)
		}
		if err := w.WriteLength(n, 1, MaxPerceivedObjects); err != nil {
			return nil, fmt.Errorf("messages: perceivedObjects length: %w", err)
		}
		for i := range c.PerceivedObjects {
			if err := c.PerceivedObjects[i].encode(w); err != nil {
				return nil, fmt.Errorf("messages: perceivedObjects[%d]: %w", i, err)
			}
		}
	}
	return w.Bytes(), nil
}

// DecodeCPM parses a UPER-encoded CPM.
func DecodeCPM(data []byte) (*CPM, error) {
	var rd asn1per.Reader
	rd.Reset(data)
	r := &rd
	h, err := decodeHeader(r)
	if err != nil {
		return nil, fmt.Errorf("messages: CPM header: %w", err)
	}
	if h.MessageID != MessageIDCPM {
		return nil, fmt.Errorf("messages: not a CPM (messageID %d)", h.MessageID)
	}
	c := &CPM{Header: h}
	v, err := r.ReadConstrainedInt(0, 65535)
	if err != nil {
		return nil, fmt.Errorf("messages: generationDeltaTime: %w", err)
	}
	c.GenerationDeltaTime = units.DeltaTime(v)
	hasObjects, err := r.ReadBool()
	if err != nil {
		return nil, fmt.Errorf("messages: cpmParameters bitmap: %w", err)
	}
	if c.Management, err = decodeCpmManagement(r); err != nil {
		return nil, fmt.Errorf("messages: managementContainer: %w", err)
	}
	if hasObjects {
		n, err := r.ReadLength(1, MaxPerceivedObjects)
		if err != nil {
			return nil, fmt.Errorf("messages: perceivedObjects length: %w", err)
		}
		c.PerceivedObjects = make([]PerceivedObject, n)
		for i := range c.PerceivedObjects {
			if c.PerceivedObjects[i], err = decodePerceivedObject(r); err != nil {
				return nil, fmt.Errorf("messages: perceivedObjects[%d]: %w", i, err)
			}
		}
	}
	return c, nil
}

func (m CpmManagementContainer) encode(w *asn1per.Writer) error {
	if err := w.WriteConstrainedInt(int64(m.StationType), 0, 255); err != nil {
		return fmt.Errorf("stationType: %w", err)
	}
	return m.Position.encode(w)
}

func decodeCpmManagement(r *asn1per.Reader) (CpmManagementContainer, error) {
	var m CpmManagementContainer
	v, err := r.ReadConstrainedInt(0, 255)
	if err != nil {
		return m, fmt.Errorf("stationType: %w", err)
	}
	m.StationType = units.StationType(v)
	m.Position, err = decodeReferencePosition(r)
	return m, err
}

func (o PerceivedObject) encode(w *asn1per.Writer) error {
	// Straight-line field list, mirroring the CAM high-frequency
	// container: this runs for every object of every CPM at up to
	// 4 Hz, so it must not allocate.
	if err := w.WriteConstrainedInt(int64(o.ObjectID), 0, 65535); err != nil {
		return fmt.Errorf("objectID: %w", err)
	}
	if err := w.WriteConstrainedInt(int64(o.TimeOfMeasurement), TimeOfMeasurementMin, TimeOfMeasurementMax); err != nil {
		return fmt.Errorf("timeOfMeasurement: %w", err)
	}
	if err := w.WriteConstrainedInt(int64(o.XDistance), ObjectDistanceMin, ObjectDistanceMax); err != nil {
		return fmt.Errorf("xDistance: %w", err)
	}
	if err := w.WriteConstrainedInt(int64(o.YDistance), ObjectDistanceMin, ObjectDistanceMax); err != nil {
		return fmt.Errorf("yDistance: %w", err)
	}
	if err := w.WriteConstrainedInt(int64(o.XSpeed), ObjectSpeedMin, ObjectSpeedMax); err != nil {
		return fmt.Errorf("xSpeed: %w", err)
	}
	if err := w.WriteConstrainedInt(int64(o.YSpeed), ObjectSpeedMin, ObjectSpeedMax); err != nil {
		return fmt.Errorf("ySpeed: %w", err)
	}
	if err := w.WriteEnumerated(int(o.Class), objectClassCount); err != nil {
		return fmt.Errorf("objectClass: %w", err)
	}
	if err := w.WriteConstrainedInt(int64(o.Confidence), 0, 101); err != nil {
		return fmt.Errorf("confidence: %w", err)
	}
	return nil
}

func decodePerceivedObject(r *asn1per.Reader) (PerceivedObject, error) {
	var o PerceivedObject
	v, err := r.ReadConstrainedInt(0, 65535)
	if err != nil {
		return o, fmt.Errorf("objectID: %w", err)
	}
	o.ObjectID = uint16(v)
	if v, err = r.ReadConstrainedInt(TimeOfMeasurementMin, TimeOfMeasurementMax); err != nil {
		return o, fmt.Errorf("timeOfMeasurement: %w", err)
	}
	o.TimeOfMeasurement = int16(v)
	if v, err = r.ReadConstrainedInt(ObjectDistanceMin, ObjectDistanceMax); err != nil {
		return o, fmt.Errorf("xDistance: %w", err)
	}
	o.XDistance = int32(v)
	if v, err = r.ReadConstrainedInt(ObjectDistanceMin, ObjectDistanceMax); err != nil {
		return o, fmt.Errorf("yDistance: %w", err)
	}
	o.YDistance = int32(v)
	if v, err = r.ReadConstrainedInt(ObjectSpeedMin, ObjectSpeedMax); err != nil {
		return o, fmt.Errorf("xSpeed: %w", err)
	}
	o.XSpeed = int16(v)
	if v, err = r.ReadConstrainedInt(ObjectSpeedMin, ObjectSpeedMax); err != nil {
		return o, fmt.Errorf("ySpeed: %w", err)
	}
	o.YSpeed = int16(v)
	cls, err := r.ReadEnumerated(objectClassCount)
	if err != nil {
		return o, fmt.Errorf("objectClass: %w", err)
	}
	o.Class = ObjectClass(cls)
	if v, err = r.ReadConstrainedInt(0, 101); err != nil {
		return o, fmt.Errorf("confidence: %w", err)
	}
	o.Confidence = uint8(v)
	return o, nil
}

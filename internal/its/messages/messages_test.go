package messages

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"itsbed/internal/units"
)

func sampleCAM() *CAM {
	cam := NewCAM(2001, 4242)
	cam.Basic = BasicContainer{
		StationType: units.StationTypePassengerCar,
		Position: ReferencePosition{
			Latitude:             units.LatitudeFromDegrees(41.178),
			Longitude:            units.LongitudeFromDegrees(-8.608),
			SemiMajorConfidence:  5,
			SemiMinorConfidence:  5,
			SemiMajorOrientation: 900,
			AltitudeValue:        AltitudeUnavailable,
		},
	}
	cam.HighFrequency = BasicVehicleContainerHighFrequency{
		Heading:                  900,
		HeadingConfidence:        10,
		Speed:                    150,
		SpeedConfidence:          5,
		DriveDirection:           DriveDirectionForward,
		VehicleLength:            5,
		VehicleWidth:             3,
		LongitudinalAcceleration: -12,
		AccelerationConfidence:   10,
		Curvature:                units.CurvatureUnavailable,
		YawRate:                  -250,
	}
	return cam
}

func sampleDENM() *DENM {
	d := NewDENM(1001)
	validity := uint32(120)
	ti := uint16(100)
	rd := RelevanceLessThan200m
	rt := RelevanceAllTrafficDirections
	d.Management = ManagementContainer{
		ActionID:                  ActionID{OriginatingStationID: 1001, SequenceNumber: 7},
		DetectionTime:             700000000123,
		ReferenceTime:             700000000125,
		EventPosition:             ReferencePosition{Latitude: 411780000, Longitude: -86080000, AltitudeValue: AltitudeUnavailable},
		RelevanceDistance:         &rd,
		RelevanceTrafficDirection: &rt,
		ValidityDuration:          &validity,
		TransmissionInterval:      &ti,
		StationType:               units.StationTypeRoadSideUnit,
	}
	d.Situation = &SituationContainer{
		InformationQuality: 3,
		EventType:          EventType{CauseCode: CauseCollisionRisk, SubCauseCode: CollisionRiskCrossing},
	}
	speed := units.Speed(150)
	heading := units.Heading(1800)
	road := RoadTypeUrbanNoStructuralSeparation
	d.Location = &LocationContainer{
		EventSpeed:           &speed,
		EventPositionHeading: &heading,
		Traces: []Trace{
			{{DeltaLatitude: 10, DeltaLongitude: -20, DeltaTime: 5}},
			{},
		},
		RoadType: &road,
	}
	lane := int8(2)
	temp := int8(21)
	d.Alacarte = &AlacarteContainer{
		LanePosition:        &lane,
		ExternalTemperature: &temp,
		StationaryVehicle:   &StationaryVehicleContainer{StationarySince: 1, NumberOfOccupants: 2},
	}
	return d
}

func TestCAMRoundTrip(t *testing.T) {
	cam := sampleCAM()
	cam.LowFrequency = &BasicVehicleContainerLowFrequency{
		VehicleRole:    VehicleRoleDefault,
		ExteriorLights: 0b10100000,
		PathHistory: []PathPoint{
			{DeltaLatitude: 100, DeltaLongitude: -200, DeltaTime: 10},
			{DeltaLatitude: -131071, DeltaLongitude: 131072, DeltaTime: 65535},
		},
	}
	data, err := cam.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCAM(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cam, got) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, cam)
	}
}

func TestCAMWithoutLowFrequency(t *testing.T) {
	cam := sampleCAM()
	data, err := cam.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCAM(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.LowFrequency != nil {
		t.Fatal("absent low-frequency container decoded as present")
	}
	if !reflect.DeepEqual(cam, got) {
		t.Fatal("round trip mismatch")
	}
}

func TestCAMSizePlausible(t *testing.T) {
	data, err := sampleCAM().Encode()
	if err != nil {
		t.Fatal(err)
	}
	// A minimal real-world CAM is a few tens of bytes.
	if len(data) < 20 || len(data) > 60 {
		t.Fatalf("CAM encoded to %d bytes, implausible", len(data))
	}
}

func TestDENMRoundTripFull(t *testing.T) {
	d := sampleDENM()
	data, err := d.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeDENM(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d, got) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, d)
	}
}

func TestDENMMandatoryOnly(t *testing.T) {
	d := NewDENM(1001)
	d.Management = ManagementContainer{
		ActionID:      ActionID{OriginatingStationID: 1001, SequenceNumber: 1},
		DetectionTime: 1,
		ReferenceTime: 1,
		EventPosition: ReferencePosition{AltitudeValue: AltitudeUnavailable},
		StationType:   units.StationTypeRoadSideUnit,
	}
	data, err := d.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeDENM(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Situation != nil || got.Location != nil || got.Alacarte != nil {
		t.Fatal("optional containers materialised from nothing")
	}
	if got.Validity() != DefaultValidityDuration {
		t.Fatalf("default validity %d, want %d", got.Validity(), DefaultValidityDuration)
	}
}

func TestDENMTermination(t *testing.T) {
	d := sampleDENM()
	term := TerminationIsCancellation
	d.Management.Termination = &term
	data, err := d.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeDENM(data)
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsTermination() {
		t.Fatal("termination lost in round trip")
	}
	if *got.Management.Termination != TerminationIsCancellation {
		t.Fatal("termination kind wrong")
	}
}

func TestDENMLocationRequiresTraces(t *testing.T) {
	d := sampleDENM()
	d.Location.Traces = nil
	if _, err := d.Encode(); err == nil {
		t.Fatal("location container with no traces encoded")
	}
}

func TestDecodeWrongMessageID(t *testing.T) {
	data, err := sampleCAM().Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeDENM(data); err == nil {
		t.Fatal("CAM decoded as DENM")
	}
	denmData, err := sampleDENM().Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeCAM(denmData); err == nil {
		t.Fatal("DENM decoded as CAM")
	}
}

func TestDecodeTruncated(t *testing.T) {
	data, err := sampleDENM().Encode()
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, 3, 8, len(data) / 2} {
		if _, err := DecodeDENM(data[:cut]); err == nil {
			t.Fatalf("truncated DENM (%d bytes) decoded", cut)
		}
	}
}

func TestPeek(t *testing.T) {
	camData, err := sampleCAM().Encode()
	if err != nil {
		t.Fatal(err)
	}
	id, station, err := Peek(camData)
	if err != nil {
		t.Fatal(err)
	}
	if id != MessageIDCAM || station != 2001 {
		t.Fatalf("peek gave (%d, %d)", id, station)
	}
	if _, _, err := Peek([]byte{0x01}); err == nil {
		t.Fatal("peek on garbage succeeded")
	}
}

func TestEncodeNil(t *testing.T) {
	var c *CAM
	if _, err := c.Encode(); err == nil {
		t.Fatal("nil CAM encoded")
	}
	var d *DENM
	if _, err := d.Encode(); err == nil {
		t.Fatal("nil DENM encoded")
	}
}

func TestPropertyDENMManagementRoundTrip(t *testing.T) {
	f := func(station uint32, seq uint16, detMS uint32, lat, lon int32, st uint8) bool {
		d := NewDENM(units.StationID(station))
		d.Management = ManagementContainer{
			ActionID:      ActionID{OriginatingStationID: units.StationID(station), SequenceNumber: seq},
			DetectionTime: uint64(detMS),
			ReferenceTime: uint64(detMS) + 2,
			EventPosition: ReferencePosition{
				Latitude:      units.LatitudeFromDegrees(float64(lat%90) + 0.5),
				Longitude:     units.LongitudeFromDegrees(float64(lon%180) + 0.5),
				AltitudeValue: AltitudeUnavailable,
			},
			StationType: units.StationType(st),
		}
		data, err := d.Encode()
		if err != nil {
			return false
		}
		got, err := DecodeDENM(data)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(d, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCAMHighFrequencyRoundTrip(t *testing.T) {
	f := func(heading uint16, speed uint16, accel int16, yaw int16) bool {
		cam := sampleCAM()
		cam.HighFrequency.Heading = units.Heading(heading % 3602)
		cam.HighFrequency.Speed = units.Speed(speed % 16384)
		cam.HighFrequency.LongitudinalAcceleration = accel % 161
		cam.HighFrequency.YawRate = int32(yaw)
		if cam.HighFrequency.YawRate < -32766 {
			cam.HighFrequency.YawRate = -32766
		}
		data, err := cam.Encode()
		if err != nil {
			return false
		}
		got, err := DecodeCAM(data)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(cam, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(6))}); err != nil {
		t.Fatal(err)
	}
}

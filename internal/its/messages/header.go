// Package messages defines the ETSI ITS facilities-layer messages used
// by the testbed — Cooperative Awareness Messages (CAM, EN 302 637-2)
// and Decentralized Environmental Notification Messages (DENM, EN 302
// 637-3) — together with their ASN.1 UPER wire codecs and the DENM
// cause-code registry reproduced in the paper's Table I.
//
// The structures follow the standards' container layout (ItsPduHeader;
// CAM basic/high-frequency/low-frequency containers; DENM management,
// situation, location and à-la-carte containers) with the field set
// the testbed exercises. Encoding is hand-written against the
// internal/asn1per codec so the bytes on the simulated air interface
// are genuine unaligned-PER.
package messages

import (
	"errors"
	"fmt"

	"itsbed/internal/asn1per"
	"itsbed/internal/units"
)

// Message identifiers from the ItsPduHeader messageID field.
const (
	MessageIDDENM uint8 = 1
	MessageIDCAM  uint8 = 2
	MessageIDCPM  uint8 = 14
)

// CurrentProtocolVersion is the ItsPduHeader protocolVersion this
// implementation emits (release 1 message sets).
const CurrentProtocolVersion uint8 = 2

// ItsPduHeader is the common header of every ETSI ITS facilities
// message.
type ItsPduHeader struct {
	ProtocolVersion uint8
	MessageID       uint8
	StationID       units.StationID
}

func (h ItsPduHeader) encode(w *asn1per.Writer) error {
	if err := w.WriteConstrainedInt(int64(h.ProtocolVersion), 0, 255); err != nil {
		return fmt.Errorf("protocolVersion: %w", err)
	}
	if err := w.WriteConstrainedInt(int64(h.MessageID), 0, 255); err != nil {
		return fmt.Errorf("messageID: %w", err)
	}
	if err := w.WriteConstrainedInt(int64(h.StationID), 0, 4294967295); err != nil {
		return fmt.Errorf("stationID: %w", err)
	}
	return nil
}

func decodeHeader(r *asn1per.Reader) (ItsPduHeader, error) {
	var h ItsPduHeader
	v, err := r.ReadConstrainedInt(0, 255)
	if err != nil {
		return h, fmt.Errorf("protocolVersion: %w", err)
	}
	h.ProtocolVersion = uint8(v)
	v, err = r.ReadConstrainedInt(0, 255)
	if err != nil {
		return h, fmt.Errorf("messageID: %w", err)
	}
	h.MessageID = uint8(v)
	v, err = r.ReadConstrainedInt(0, 4294967295)
	if err != nil {
		return h, fmt.Errorf("stationID: %w", err)
	}
	h.StationID = units.StationID(v)
	return h, nil
}

// ReferencePosition is the geodetic position with confidence used in
// both CAM and DENM.
type ReferencePosition struct {
	Latitude  units.Latitude
	Longitude units.Longitude
	// Confidence ellipse.
	SemiMajorConfidence  units.SemiAxisLength
	SemiMinorConfidence  units.SemiAxisLength
	SemiMajorOrientation units.Heading
	// Altitude in centimetres; AltitudeUnavailable when unknown.
	AltitudeValue int32
}

// AltitudeUnavailable is the ETSI sentinel for unknown altitude (cm).
const AltitudeUnavailable int32 = 800001

func (p ReferencePosition) encode(w *asn1per.Writer) error {
	if err := w.WriteConstrainedInt(int64(p.Latitude), int64(units.LatitudeMin), int64(units.LatitudeMax)); err != nil {
		return fmt.Errorf("latitude: %w", err)
	}
	if err := w.WriteConstrainedInt(int64(p.Longitude), int64(units.LongitudeMin), int64(units.LongitudeMax)); err != nil {
		return fmt.Errorf("longitude: %w", err)
	}
	if err := w.WriteConstrainedInt(int64(p.SemiMajorConfidence), 0, 4095); err != nil {
		return fmt.Errorf("semiMajorConfidence: %w", err)
	}
	if err := w.WriteConstrainedInt(int64(p.SemiMinorConfidence), 0, 4095); err != nil {
		return fmt.Errorf("semiMinorConfidence: %w", err)
	}
	if err := w.WriteConstrainedInt(int64(p.SemiMajorOrientation), 0, 3601); err != nil {
		return fmt.Errorf("semiMajorOrientation: %w", err)
	}
	if err := w.WriteConstrainedInt(int64(p.AltitudeValue), -100000, 800001); err != nil {
		return fmt.Errorf("altitude: %w", err)
	}
	return nil
}

func decodeReferencePosition(r *asn1per.Reader) (ReferencePosition, error) {
	var p ReferencePosition
	v, err := r.ReadConstrainedInt(int64(units.LatitudeMin), int64(units.LatitudeMax))
	if err != nil {
		return p, fmt.Errorf("latitude: %w", err)
	}
	p.Latitude = units.Latitude(v)
	v, err = r.ReadConstrainedInt(int64(units.LongitudeMin), int64(units.LongitudeMax))
	if err != nil {
		return p, fmt.Errorf("longitude: %w", err)
	}
	p.Longitude = units.Longitude(v)
	v, err = r.ReadConstrainedInt(0, 4095)
	if err != nil {
		return p, fmt.Errorf("semiMajorConfidence: %w", err)
	}
	p.SemiMajorConfidence = units.SemiAxisLength(v)
	v, err = r.ReadConstrainedInt(0, 4095)
	if err != nil {
		return p, fmt.Errorf("semiMinorConfidence: %w", err)
	}
	p.SemiMinorConfidence = units.SemiAxisLength(v)
	v, err = r.ReadConstrainedInt(0, 3601)
	if err != nil {
		return p, fmt.Errorf("semiMajorOrientation: %w", err)
	}
	p.SemiMajorOrientation = units.Heading(v)
	v, err = r.ReadConstrainedInt(-100000, 800001)
	if err != nil {
		return p, fmt.Errorf("altitude: %w", err)
	}
	p.AltitudeValue = int32(v)
	return p, nil
}

// TimestampItsMax is the upper bound of the 42-bit TimestampIts data
// element (milliseconds since the ITS epoch 2004-01-01).
const TimestampItsMax = int64(1)<<42 - 1

func encodeTimestampIts(w *asn1per.Writer, ts uint64) error {
	if int64(ts) > TimestampItsMax {
		return fmt.Errorf("%w: timestampIts %d", asn1per.ErrRange, ts)
	}
	return w.WriteConstrainedInt(int64(ts), 0, TimestampItsMax)
}

func decodeTimestampIts(r *asn1per.Reader) (uint64, error) {
	v, err := r.ReadConstrainedInt(0, TimestampItsMax)
	return uint64(v), err
}

// Peek inspects the ItsPduHeader of an encoded facilities message
// without consuming it, returning the message ID and station ID.
func Peek(data []byte) (msgID uint8, station units.StationID, err error) {
	var r asn1per.Reader
	r.Reset(data)
	h, err := decodeHeader(&r)
	if err != nil {
		return 0, 0, fmt.Errorf("messages: peek header: %w", err)
	}
	return h.MessageID, h.StationID, nil
}

// errNilMessage is returned when encoding a nil message pointer.
var errNilMessage = errors.New("messages: nil message")

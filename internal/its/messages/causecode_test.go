package messages

import (
	"sort"
	"testing"
)

// TestTableICauseCodes checks the rows the paper reproduces in its
// Table I against the registry.
func TestTableICauseCodes(t *testing.T) {
	cases := []struct {
		code CauseCode
		desc string
		subs map[SubCauseCode]string
	}{
		{CauseHazardousLocationSurfaceCondition, "hazardousLocation-SurfaceCondition", nil},
		{CauseHazardousLocationObstacleOnTheRoad, "hazardousLocation-ObstacleOnTheRoad", nil},
		{CauseCollisionRisk, "collisionRisk", map[SubCauseCode]string{
			0: "unavailable",
			1: "longitudinalCollisionRisk",
			2: "crossingCollisionRisk",
			3: "lateralCollisionRisk",
			4: "collisionRiskInvolvingVulnerableRoadUser",
		}},
		{CauseDangerousSituation, "dangerousSituation", map[SubCauseCode]string{
			0: "unavailable",
			1: "emergencyElectronicBrakeEngaged",
			2: "preCrashSystemEngaged",
			3: "espEngaged",
			4: "absEngaged",
			5: "aebEngaged",
			6: "brakeWarningEngaged",
			7: "collisionRiskWarningEngaged",
		}},
	}
	for _, c := range cases {
		info, ok := Lookup(c.code)
		if !ok {
			t.Fatalf("cause %d not registered", c.code)
		}
		if info.Description != c.desc {
			t.Fatalf("cause %d description %q, want %q", c.code, info.Description, c.desc)
		}
		for sub, want := range c.subs {
			if got := SubCauseDescription(c.code, sub); got != want {
				t.Fatalf("cause %d sub %d = %q, want %q", c.code, sub, got, want)
			}
		}
	}
}

func TestNumericValuesOfPaperCodes(t *testing.T) {
	// The paper quotes these numbers explicitly.
	if CauseHazardousLocationSurfaceCondition != 9 {
		t.Fatal("surface condition must be 9")
	}
	if CauseHazardousLocationObstacleOnTheRoad != 10 {
		t.Fatal("obstacle on the road must be 10")
	}
	if CauseStationaryVehicle != 94 {
		t.Fatal("stationary vehicle must be 94")
	}
	if CauseCollisionRisk != 97 {
		t.Fatal("collision risk must be 97")
	}
	if CauseDangerousSituation != 99 {
		t.Fatal("dangerous situation must be 99")
	}
	// "a subCauseCode of 1 would indicate a human problem and 2 a
	// vehicle breakdown" under cause 94.
	if SubCauseDescription(CauseStationaryVehicle, 1) != "humanProblem" {
		t.Fatal("94/1 must be humanProblem")
	}
	if SubCauseDescription(CauseStationaryVehicle, 2) != "vehicleBreakdown" {
		t.Fatal("94/2 must be vehicleBreakdown")
	}
}

func TestAllCausesSortedAndComplete(t *testing.T) {
	all := AllCauses()
	if len(all) < 20 {
		t.Fatalf("registry has only %d causes", len(all))
	}
	if !sort.SliceIsSorted(all, func(i, j int) bool { return all[i].Code < all[j].Code }) {
		t.Fatal("AllCauses not sorted by code")
	}
	for _, c := range all {
		if c.Code != CauseReserved && c.SubCauses[0] != "unavailable" {
			t.Fatalf("cause %d: sub-cause 0 must be unavailable", c.Code)
		}
	}
}

func TestUnknownCause(t *testing.T) {
	if _, ok := Lookup(CauseCode(200)); ok {
		t.Fatal("unregistered cause found")
	}
	if CauseCode(200).String() != "unknown(200)" {
		t.Fatalf("String()=%q", CauseCode(200).String())
	}
	if SubCauseDescription(CauseCode(200), 1) != "unavailable" {
		t.Fatal("unknown cause sub-cause not unavailable")
	}
}

func TestEventTypeString(t *testing.T) {
	e := EventType{CauseCode: CauseCollisionRisk, SubCauseCode: CollisionRiskCrossing}
	if e.String() != "collisionRisk(97)/2" {
		t.Fatalf("EventType.String()=%q", e.String())
	}
}

func TestActionIDString(t *testing.T) {
	a := ActionID{OriginatingStationID: 1001, SequenceNumber: 7}
	if a.String() != "1001/7" {
		t.Fatalf("ActionID.String()=%q", a.String())
	}
}

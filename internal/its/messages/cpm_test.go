package messages

import (
	"math/rand"
	"reflect"
	"testing"

	"itsbed/internal/units"
)

func sampleCPM() *CPM {
	c := NewCPM(901, 1234)
	c.Management = CpmManagementContainer{
		StationType: units.StationTypeRoadSideUnit,
		Position: ReferencePosition{
			Latitude:             units.LatitudeFromDegrees(41.178),
			Longitude:            units.LongitudeFromDegrees(-8.608),
			SemiMajorConfidence:  5,
			SemiMinorConfidence:  5,
			SemiMajorOrientation: 900,
			AltitudeValue:        AltitudeUnavailable,
		},
	}
	c.PerceivedObjects = []PerceivedObject{
		{
			ObjectID:          1,
			TimeOfMeasurement: -120,
			XDistance:         250,
			YDistance:         -80,
			XSpeed:            0,
			YSpeed:            0,
			Class:             ObjectClassPerson,
			Confidence:        85,
		},
		{
			ObjectID:          2,
			TimeOfMeasurement: -40,
			XDistance:         -13000,
			YDistance:         4200,
			XSpeed:            120,
			YSpeed:            -360,
			Class:             ObjectClassVehicle,
			Confidence:        ConfidenceUnavailable,
		},
	}
	return c
}

func TestCPMRoundTrip(t *testing.T) {
	orig := sampleCPM()
	data, err := orig.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeCPM(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(orig, got) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, orig)
	}
}

func TestCPMRoundTripNoObjects(t *testing.T) {
	orig := sampleCPM()
	orig.PerceivedObjects = nil
	data, err := orig.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeCPM(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(orig, got) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, orig)
	}
}

func TestCPMRoundTripBoundaryObject(t *testing.T) {
	orig := sampleCPM()
	orig.PerceivedObjects = []PerceivedObject{{
		ObjectID:          65535,
		TimeOfMeasurement: TimeOfMeasurementMin,
		XDistance:         ObjectDistanceMax,
		YDistance:         ObjectDistanceMin,
		XSpeed:            ObjectSpeedMax,
		YSpeed:            ObjectSpeedMin,
		Class:             ObjectClassOther,
		Confidence:        0,
	}}
	data, err := orig.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeCPM(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(orig, got) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, orig)
	}
}

func TestCPMEncodeRejectsNil(t *testing.T) {
	var c *CPM
	if _, err := c.Encode(); err == nil {
		t.Fatal("nil CPM encoded without error")
	}
}

func TestCPMEncodeRejectsTooManyObjects(t *testing.T) {
	c := sampleCPM()
	c.PerceivedObjects = make([]PerceivedObject, MaxPerceivedObjects+1)
	if _, err := c.Encode(); err == nil {
		t.Fatal("oversized perceivedObjects encoded without error")
	}
}

func TestCPMEncodeRejectsOutOfRangeDistance(t *testing.T) {
	c := sampleCPM()
	c.PerceivedObjects[0].XDistance = ObjectDistanceMax + 1
	if _, err := c.Encode(); err == nil {
		t.Fatal("out-of-range xDistance encoded without error")
	}
}

func TestDecodeCPMRejectsOtherMessage(t *testing.T) {
	data, err := sampleCAM().Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeCPM(data); err == nil {
		t.Fatal("DecodeCPM accepted a CAM")
	}
}

func TestDecodeCPMTruncated(t *testing.T) {
	data, err := sampleCPM().Encode()
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(data); n++ {
		if _, err := DecodeCPM(data[:n]); err == nil {
			t.Fatalf("truncated CPM (%d of %d bytes) decoded without error", n, len(data))
		}
	}
}

func TestDecodeCPMNeverPanics(t *testing.T) {
	neverPanics(t, "DecodeCPM", func(b []byte) { _, _ = DecodeCPM(b) })
}

// TestCPMEncodePooledWriterReuse exercises the pooled-writer boundary:
// interleaved CPM/CAM/DENM encodes through the shared asn1per pool
// must stay byte-identical.
func TestCPMEncodePooledWriterReuse(t *testing.T) {
	first, err := sampleCPM().Encode()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if _, err := sampleCAM().Encode(); err != nil {
			t.Fatal(err)
		}
		if _, err := sampleDENM().Encode(); err != nil {
			t.Fatal(err)
		}
		again, err := sampleCPM().Encode()
		if err != nil {
			t.Fatal(err)
		}
		if string(first) != string(again) {
			t.Fatalf("encode #%d differs after pooled interleaving", i+2)
		}
	}
}

// FuzzDecodeCPM is the CPM counterpart of FuzzDecodeDENM: decoding
// arbitrary bytes never panics, and any accepted decode re-encodes
// without error.
func FuzzDecodeCPM(f *testing.F) {
	if seed, err := sampleCPM().Encode(); err == nil {
		f.Add(seed)
	}
	empty := sampleCPM()
	empty.PerceivedObjects = nil
	if seed, err := empty.Encode(); err == nil {
		f.Add(seed)
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := DecodeCPM(data)
		if err != nil {
			return
		}
		if _, err := c.Encode(); err != nil {
			t.Fatalf("accepted decode produced unencodable CPM: %v", err)
		}
	})
}

// TestDecodeMutatedCPM flips bits in a valid encoding: every mutation
// must either decode cleanly or fail with an error — no panics.
func TestDecodeMutatedCPM(t *testing.T) {
	base, err := sampleCPM().Encode()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(102))
	for i := 0; i < 5000; i++ {
		mutated := make([]byte, len(base))
		copy(mutated, base)
		for n := 0; n < 1+rng.Intn(3); n++ {
			pos := rng.Intn(len(mutated) * 8)
			mutated[pos/8] ^= 1 << (7 - uint(pos%8))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on mutation %x: %v", mutated, r)
				}
			}()
			if c, err := DecodeCPM(mutated); err == nil {
				if _, err := c.Encode(); err != nil {
					t.Fatalf("mutated decode produced unencodable CPM: %v", err)
				}
			}
		}()
	}
}

// TestCPMPeek verifies the generic header peek sees CPMs.
func TestCPMPeek(t *testing.T) {
	data, err := sampleCPM().Encode()
	if err != nil {
		t.Fatal(err)
	}
	id, station, err := Peek(data)
	if err != nil {
		t.Fatal(err)
	}
	if id != MessageIDCPM || station != 901 {
		t.Fatalf("peek got (%d, %d), want (%d, 901)", id, station, MessageIDCPM)
	}
}

package messages

import (
	"fmt"

	"itsbed/internal/asn1per"
	"itsbed/internal/units"
)

// ActionID uniquely identifies a DENM event: the originating station
// plus a per-station sequence number (EN 302 637-3 §6.1.1).
type ActionID struct {
	OriginatingStationID units.StationID
	SequenceNumber       uint16
}

// String implements fmt.Stringer.
func (a ActionID) String() string {
	return fmt.Sprintf("%d/%d", a.OriginatingStationID, a.SequenceNumber)
}

// Termination indicates cancellation or negation of an event.
type Termination uint8

// Termination kinds.
const (
	TerminationIsCancellation Termination = 0
	TerminationIsNegation     Termination = 1
)

// RelevanceDistance buckets per the common data dictionary.
type RelevanceDistance uint8

// Relevance distances.
const (
	RelevanceLessThan50m  RelevanceDistance = 0
	RelevanceLessThan100m RelevanceDistance = 1
	RelevanceLessThan200m RelevanceDistance = 2
	RelevanceLessThan500m RelevanceDistance = 3
	RelevanceLessThan1km  RelevanceDistance = 4
	RelevanceLessThan5km  RelevanceDistance = 5
	RelevanceLessThan10km RelevanceDistance = 6
	RelevanceOver10km     RelevanceDistance = 7
)

const relevanceDistanceCount = 8

// RelevanceTrafficDirection per the common data dictionary.
type RelevanceTrafficDirection uint8

// Relevance traffic directions.
const (
	RelevanceAllTrafficDirections RelevanceTrafficDirection = 0
	RelevanceUpstreamTraffic      RelevanceTrafficDirection = 1
	RelevanceDownstreamTraffic    RelevanceTrafficDirection = 2
	RelevanceOppositeTraffic      RelevanceTrafficDirection = 3
)

const relevanceTrafficDirectionCount = 4

// DefaultValidityDuration applies when the management container omits
// validityDuration (EN 302 637-3: 600 s).
const DefaultValidityDuration uint32 = 600

// ManagementContainer is the mandatory DENM container (EN 302 637-3
// §7.1.2).
type ManagementContainer struct {
	ActionID                  ActionID
	DetectionTime             uint64 // TimestampIts, ms since ITS epoch
	ReferenceTime             uint64 // TimestampIts
	Termination               *Termination
	EventPosition             ReferencePosition
	RelevanceDistance         *RelevanceDistance
	RelevanceTrafficDirection *RelevanceTrafficDirection
	// ValidityDuration in seconds (0..86400); nil means the 600 s
	// default.
	ValidityDuration *uint32
	// TransmissionInterval in milliseconds (1..10000) for repetition.
	TransmissionInterval *uint16
	StationType          units.StationType
}

// InformationQuality of the situation container (0..7, 0 = unavailable).
type InformationQuality uint8

// EventType is the causeCode/subCauseCode pair describing the event.
type EventType struct {
	CauseCode    CauseCode
	SubCauseCode SubCauseCode
}

// String implements fmt.Stringer.
func (e EventType) String() string {
	return fmt.Sprintf("%s(%d)/%d", e.CauseCode, e.CauseCode, e.SubCauseCode)
}

// SituationContainer is the optional DENM container describing the
// detected event.
type SituationContainer struct {
	InformationQuality InformationQuality
	EventType          EventType
	LinkedCause        *EventType
}

// RoadType per the common data dictionary.
type RoadType uint8

// Road types.
const (
	RoadTypeUrbanNoStructuralSeparation      RoadType = 0
	RoadTypeUrbanWithStructuralSeparation    RoadType = 1
	RoadTypeNonUrbanNoStructuralSeparation   RoadType = 2
	RoadTypeNonUrbanWithStructuralSeparation RoadType = 3
)

const roadTypeCount = 4

// Trace is one itinerary to the event location (a path history).
type Trace []PathPoint

// LocationContainer is the optional DENM container locating the event.
// Traces is mandatory within the container (1..7 itineraries).
type LocationContainer struct {
	EventSpeed           *units.Speed
	EventPositionHeading *units.Heading
	Traces               []Trace
	RoadType             *RoadType
}

const maxTraces = 7

// StationaryVehicleContainer is the à-la-carte sub-container for
// stationary-vehicle events (subset of EN 302 637-3 annex).
type StationaryVehicleContainer struct {
	// StationarySince buckets: 0 <1min, 1 <2min, 2 <15min, 3 ≥15min.
	StationarySince uint8
	// NumberOfOccupants 0..127, 127 unavailable.
	NumberOfOccupants uint8
}

// AlacarteContainer is the optional free-form DENM container.
type AlacarteContainer struct {
	// LanePosition -1..14 (-1 = off the road).
	LanePosition *int8
	// ExternalTemperature in °C (-60..67).
	ExternalTemperature *int8
	StationaryVehicle   *StationaryVehicleContainer
}

// DENM is a Decentralized Environmental Notification Message
// (EN 302 637-3). The road-side infrastructure issues one when the
// hazard advertisement service detects an impending collision.
type DENM struct {
	Header     ItsPduHeader
	Management ManagementContainer
	Situation  *SituationContainer
	Location   *LocationContainer
	Alacarte   *AlacarteContainer
}

// NewDENM builds a DENM with the header filled in.
func NewDENM(station units.StationID) *DENM {
	return &DENM{
		Header: ItsPduHeader{
			ProtocolVersion: CurrentProtocolVersion,
			MessageID:       MessageIDDENM,
			StationID:       station,
		},
	}
}

// IsTermination reports whether the DENM cancels or negates an event.
func (d *DENM) IsTermination() bool { return d.Management.Termination != nil }

// Validity returns the event validity duration, applying the standard
// default when the field is absent.
func (d *DENM) Validity() uint32 {
	if d.Management.ValidityDuration != nil {
		return *d.Management.ValidityDuration
	}
	return DefaultValidityDuration
}

// Encode serialises the DENM to UPER bytes.
func (d *DENM) Encode() ([]byte, error) {
	if d == nil {
		return nil, errNilMessage
	}
	w := asn1per.GetWriter()
	defer asn1per.PutWriter(w)
	if err := d.Header.encode(w); err != nil {
		return nil, fmt.Errorf("messages: DENM header: %w", err)
	}
	// DecentralizedEnvironmentalNotificationMessage presence bitmap:
	// situation, location, alacarte.
	w.WriteBool(d.Situation != nil)
	w.WriteBool(d.Location != nil)
	w.WriteBool(d.Alacarte != nil)
	if err := d.Management.encode(w); err != nil {
		return nil, fmt.Errorf("messages: management: %w", err)
	}
	if d.Situation != nil {
		if err := d.Situation.encode(w); err != nil {
			return nil, fmt.Errorf("messages: situation: %w", err)
		}
	}
	if d.Location != nil {
		if err := d.Location.encode(w); err != nil {
			return nil, fmt.Errorf("messages: location: %w", err)
		}
	}
	if d.Alacarte != nil {
		if err := d.Alacarte.encode(w); err != nil {
			return nil, fmt.Errorf("messages: alacarte: %w", err)
		}
	}
	return w.Bytes(), nil
}

// DecodeDENM parses a UPER-encoded DENM.
func DecodeDENM(data []byte) (*DENM, error) {
	var rd asn1per.Reader
	rd.Reset(data)
	r := &rd
	h, err := decodeHeader(r)
	if err != nil {
		return nil, fmt.Errorf("messages: DENM header: %w", err)
	}
	if h.MessageID != MessageIDDENM {
		return nil, fmt.Errorf("messages: not a DENM (messageID %d)", h.MessageID)
	}
	d := &DENM{Header: h}
	hasSit, err := r.ReadBool()
	if err != nil {
		return nil, fmt.Errorf("messages: DENM bitmap: %w", err)
	}
	hasLoc, err := r.ReadBool()
	if err != nil {
		return nil, fmt.Errorf("messages: DENM bitmap: %w", err)
	}
	hasAlc, err := r.ReadBool()
	if err != nil {
		return nil, fmt.Errorf("messages: DENM bitmap: %w", err)
	}
	if d.Management, err = decodeManagement(r); err != nil {
		return nil, fmt.Errorf("messages: management: %w", err)
	}
	if hasSit {
		s, err := decodeSituation(r)
		if err != nil {
			return nil, fmt.Errorf("messages: situation: %w", err)
		}
		d.Situation = &s
	}
	if hasLoc {
		l, err := decodeLocation(r)
		if err != nil {
			return nil, fmt.Errorf("messages: location: %w", err)
		}
		d.Location = &l
	}
	if hasAlc {
		a, err := decodeAlacarte(r)
		if err != nil {
			return nil, fmt.Errorf("messages: alacarte: %w", err)
		}
		d.Alacarte = &a
	}
	return d, nil
}

func (m ManagementContainer) encode(w *asn1per.Writer) error {
	// Presence bitmap: termination, relevanceDistance,
	// relevanceTrafficDirection, validityDuration, transmissionInterval.
	w.WriteBool(m.Termination != nil)
	w.WriteBool(m.RelevanceDistance != nil)
	w.WriteBool(m.RelevanceTrafficDirection != nil)
	w.WriteBool(m.ValidityDuration != nil)
	w.WriteBool(m.TransmissionInterval != nil)
	if err := w.WriteConstrainedInt(int64(m.ActionID.OriginatingStationID), 0, 4294967295); err != nil {
		return fmt.Errorf("actionID.originatingStationID: %w", err)
	}
	if err := w.WriteConstrainedInt(int64(m.ActionID.SequenceNumber), 0, 65535); err != nil {
		return fmt.Errorf("actionID.sequenceNumber: %w", err)
	}
	if err := encodeTimestampIts(w, m.DetectionTime); err != nil {
		return fmt.Errorf("detectionTime: %w", err)
	}
	if err := encodeTimestampIts(w, m.ReferenceTime); err != nil {
		return fmt.Errorf("referenceTime: %w", err)
	}
	if m.Termination != nil {
		if err := w.WriteEnumerated(int(*m.Termination), 2); err != nil {
			return fmt.Errorf("termination: %w", err)
		}
	}
	if err := m.EventPosition.encode(w); err != nil {
		return fmt.Errorf("eventPosition: %w", err)
	}
	if m.RelevanceDistance != nil {
		if err := w.WriteEnumerated(int(*m.RelevanceDistance), relevanceDistanceCount); err != nil {
			return fmt.Errorf("relevanceDistance: %w", err)
		}
	}
	if m.RelevanceTrafficDirection != nil {
		if err := w.WriteEnumerated(int(*m.RelevanceTrafficDirection), relevanceTrafficDirectionCount); err != nil {
			return fmt.Errorf("relevanceTrafficDirection: %w", err)
		}
	}
	if m.ValidityDuration != nil {
		if err := w.WriteConstrainedInt(int64(*m.ValidityDuration), 0, 86400); err != nil {
			return fmt.Errorf("validityDuration: %w", err)
		}
	}
	if m.TransmissionInterval != nil {
		if err := w.WriteConstrainedInt(int64(*m.TransmissionInterval), 1, 10000); err != nil {
			return fmt.Errorf("transmissionInterval: %w", err)
		}
	}
	if err := w.WriteConstrainedInt(int64(m.StationType), 0, 255); err != nil {
		return fmt.Errorf("stationType: %w", err)
	}
	return nil
}

func decodeManagement(r *asn1per.Reader) (ManagementContainer, error) {
	var m ManagementContainer
	var present [5]bool
	for i := range present {
		b, err := r.ReadBool()
		if err != nil {
			return m, fmt.Errorf("bitmap: %w", err)
		}
		present[i] = b
	}
	v, err := r.ReadConstrainedInt(0, 4294967295)
	if err != nil {
		return m, fmt.Errorf("actionID.originatingStationID: %w", err)
	}
	m.ActionID.OriginatingStationID = units.StationID(v)
	v, err = r.ReadConstrainedInt(0, 65535)
	if err != nil {
		return m, fmt.Errorf("actionID.sequenceNumber: %w", err)
	}
	m.ActionID.SequenceNumber = uint16(v)
	if m.DetectionTime, err = decodeTimestampIts(r); err != nil {
		return m, fmt.Errorf("detectionTime: %w", err)
	}
	if m.ReferenceTime, err = decodeTimestampIts(r); err != nil {
		return m, fmt.Errorf("referenceTime: %w", err)
	}
	if present[0] {
		t, err := r.ReadEnumerated(2)
		if err != nil {
			return m, fmt.Errorf("termination: %w", err)
		}
		term := Termination(t)
		m.Termination = &term
	}
	if m.EventPosition, err = decodeReferencePosition(r); err != nil {
		return m, fmt.Errorf("eventPosition: %w", err)
	}
	if present[1] {
		d, err := r.ReadEnumerated(relevanceDistanceCount)
		if err != nil {
			return m, fmt.Errorf("relevanceDistance: %w", err)
		}
		rd := RelevanceDistance(d)
		m.RelevanceDistance = &rd
	}
	if present[2] {
		d, err := r.ReadEnumerated(relevanceTrafficDirectionCount)
		if err != nil {
			return m, fmt.Errorf("relevanceTrafficDirection: %w", err)
		}
		rt := RelevanceTrafficDirection(d)
		m.RelevanceTrafficDirection = &rt
	}
	if present[3] {
		v, err := r.ReadConstrainedInt(0, 86400)
		if err != nil {
			return m, fmt.Errorf("validityDuration: %w", err)
		}
		vd := uint32(v)
		m.ValidityDuration = &vd
	}
	if present[4] {
		v, err := r.ReadConstrainedInt(1, 10000)
		if err != nil {
			return m, fmt.Errorf("transmissionInterval: %w", err)
		}
		ti := uint16(v)
		m.TransmissionInterval = &ti
	}
	v, err = r.ReadConstrainedInt(0, 255)
	if err != nil {
		return m, fmt.Errorf("stationType: %w", err)
	}
	m.StationType = units.StationType(v)
	return m, nil
}

func (s SituationContainer) encode(w *asn1per.Writer) error {
	w.WriteBool(s.LinkedCause != nil)
	if err := w.WriteConstrainedInt(int64(s.InformationQuality), 0, 7); err != nil {
		return fmt.Errorf("informationQuality: %w", err)
	}
	if err := s.EventType.encode(w); err != nil {
		return fmt.Errorf("eventType: %w", err)
	}
	if s.LinkedCause != nil {
		if err := s.LinkedCause.encode(w); err != nil {
			return fmt.Errorf("linkedCause: %w", err)
		}
	}
	return nil
}

func decodeSituation(r *asn1per.Reader) (SituationContainer, error) {
	var s SituationContainer
	hasLinked, err := r.ReadBool()
	if err != nil {
		return s, fmt.Errorf("bitmap: %w", err)
	}
	v, err := r.ReadConstrainedInt(0, 7)
	if err != nil {
		return s, fmt.Errorf("informationQuality: %w", err)
	}
	s.InformationQuality = InformationQuality(v)
	if s.EventType, err = decodeEventType(r); err != nil {
		return s, fmt.Errorf("eventType: %w", err)
	}
	if hasLinked {
		lc, err := decodeEventType(r)
		if err != nil {
			return s, fmt.Errorf("linkedCause: %w", err)
		}
		s.LinkedCause = &lc
	}
	return s, nil
}

func (e EventType) encode(w *asn1per.Writer) error {
	if err := w.WriteConstrainedInt(int64(e.CauseCode), 0, 255); err != nil {
		return fmt.Errorf("causeCode: %w", err)
	}
	return w.WriteConstrainedInt(int64(e.SubCauseCode), 0, 255)
}

func decodeEventType(r *asn1per.Reader) (EventType, error) {
	var e EventType
	v, err := r.ReadConstrainedInt(0, 255)
	if err != nil {
		return e, fmt.Errorf("causeCode: %w", err)
	}
	e.CauseCode = CauseCode(v)
	v, err = r.ReadConstrainedInt(0, 255)
	if err != nil {
		return e, fmt.Errorf("subCauseCode: %w", err)
	}
	e.SubCauseCode = SubCauseCode(v)
	return e, nil
}

func (l LocationContainer) encode(w *asn1per.Writer) error {
	if len(l.Traces) < 1 || len(l.Traces) > maxTraces {
		return fmt.Errorf("%w: location container requires 1..%d traces, have %d",
			asn1per.ErrRange, maxTraces, len(l.Traces))
	}
	w.WriteBool(l.EventSpeed != nil)
	w.WriteBool(l.EventPositionHeading != nil)
	w.WriteBool(l.RoadType != nil)
	if l.EventSpeed != nil {
		if err := w.WriteConstrainedInt(int64(*l.EventSpeed), 0, 16383); err != nil {
			return fmt.Errorf("eventSpeed: %w", err)
		}
	}
	if l.EventPositionHeading != nil {
		if err := w.WriteConstrainedInt(int64(*l.EventPositionHeading), 0, 3601); err != nil {
			return fmt.Errorf("eventPositionHeading: %w", err)
		}
	}
	if err := w.WriteLength(len(l.Traces), 1, maxTraces); err != nil {
		return fmt.Errorf("traces length: %w", err)
	}
	for i, tr := range l.Traces {
		if len(tr) > maxPathPoints {
			return fmt.Errorf("%w: trace %d has %d points", asn1per.ErrRange, i, len(tr))
		}
		if err := w.WriteLength(len(tr), 0, maxPathPoints); err != nil {
			return fmt.Errorf("trace[%d] length: %w", i, err)
		}
		for j, p := range tr {
			if err := p.encode(w); err != nil {
				return fmt.Errorf("trace[%d][%d]: %w", i, j, err)
			}
		}
	}
	if l.RoadType != nil {
		if err := w.WriteEnumerated(int(*l.RoadType), roadTypeCount); err != nil {
			return fmt.Errorf("roadType: %w", err)
		}
	}
	return nil
}

func decodeLocation(r *asn1per.Reader) (LocationContainer, error) {
	var l LocationContainer
	var present [3]bool
	for i := range present {
		b, err := r.ReadBool()
		if err != nil {
			return l, fmt.Errorf("bitmap: %w", err)
		}
		present[i] = b
	}
	if present[0] {
		v, err := r.ReadConstrainedInt(0, 16383)
		if err != nil {
			return l, fmt.Errorf("eventSpeed: %w", err)
		}
		sp := units.Speed(v)
		l.EventSpeed = &sp
	}
	if present[1] {
		v, err := r.ReadConstrainedInt(0, 3601)
		if err != nil {
			return l, fmt.Errorf("eventPositionHeading: %w", err)
		}
		h := units.Heading(v)
		l.EventPositionHeading = &h
	}
	n, err := r.ReadLength(1, maxTraces)
	if err != nil {
		return l, fmt.Errorf("traces length: %w", err)
	}
	l.Traces = make([]Trace, n)
	for i := range l.Traces {
		m, err := r.ReadLength(0, maxPathPoints)
		if err != nil {
			return l, fmt.Errorf("trace[%d] length: %w", i, err)
		}
		tr := make(Trace, m)
		for j := range tr {
			tr[j], err = decodePathPoint(r)
			if err != nil {
				return l, fmt.Errorf("trace[%d][%d]: %w", i, j, err)
			}
		}
		l.Traces[i] = tr
	}
	if present[2] {
		rt, err := r.ReadEnumerated(roadTypeCount)
		if err != nil {
			return l, fmt.Errorf("roadType: %w", err)
		}
		road := RoadType(rt)
		l.RoadType = &road
	}
	return l, nil
}

func (a AlacarteContainer) encode(w *asn1per.Writer) error {
	w.WriteBool(a.LanePosition != nil)
	w.WriteBool(a.ExternalTemperature != nil)
	w.WriteBool(a.StationaryVehicle != nil)
	if a.LanePosition != nil {
		if err := w.WriteConstrainedInt(int64(*a.LanePosition), -1, 14); err != nil {
			return fmt.Errorf("lanePosition: %w", err)
		}
	}
	if a.ExternalTemperature != nil {
		if err := w.WriteConstrainedInt(int64(*a.ExternalTemperature), -60, 67); err != nil {
			return fmt.Errorf("externalTemperature: %w", err)
		}
	}
	if a.StationaryVehicle != nil {
		if err := w.WriteConstrainedInt(int64(a.StationaryVehicle.StationarySince), 0, 3); err != nil {
			return fmt.Errorf("stationarySince: %w", err)
		}
		if err := w.WriteConstrainedInt(int64(a.StationaryVehicle.NumberOfOccupants), 0, 127); err != nil {
			return fmt.Errorf("numberOfOccupants: %w", err)
		}
	}
	return nil
}

func decodeAlacarte(r *asn1per.Reader) (AlacarteContainer, error) {
	var a AlacarteContainer
	var present [3]bool
	for i := range present {
		b, err := r.ReadBool()
		if err != nil {
			return a, fmt.Errorf("bitmap: %w", err)
		}
		present[i] = b
	}
	if present[0] {
		v, err := r.ReadConstrainedInt(-1, 14)
		if err != nil {
			return a, fmt.Errorf("lanePosition: %w", err)
		}
		lp := int8(v)
		a.LanePosition = &lp
	}
	if present[1] {
		v, err := r.ReadConstrainedInt(-60, 67)
		if err != nil {
			return a, fmt.Errorf("externalTemperature: %w", err)
		}
		et := int8(v)
		a.ExternalTemperature = &et
	}
	if present[2] {
		var sv StationaryVehicleContainer
		v, err := r.ReadConstrainedInt(0, 3)
		if err != nil {
			return a, fmt.Errorf("stationarySince: %w", err)
		}
		sv.StationarySince = uint8(v)
		v, err = r.ReadConstrainedInt(0, 127)
		if err != nil {
			return a, fmt.Errorf("numberOfOccupants: %w", err)
		}
		sv.NumberOfOccupants = uint8(v)
		a.StationaryVehicle = &sv
	}
	return a, nil
}

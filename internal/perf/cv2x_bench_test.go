package perf

import (
	"fmt"
	"testing"
	"time"

	"itsbed/internal/radio"
	"itsbed/internal/sim"
)

// pc5Fleet attaches n sidelink stations with nil positions (every
// receiver in range), so the benchmark measures pure SPS scheduling
// plus per-receiver reception evaluation.
func pc5Fleet(tb testing.TB, n int) (*sim.Kernel, *radio.PC5Medium, []*radio.PC5Interface) {
	tb.Helper()
	k := sim.NewKernel(1)
	m := radio.NewPC5Medium(k, radio.PC5Config{})
	ifaces := make([]*radio.PC5Interface, n)
	for i := 0; i < n; i++ {
		iface, err := m.Attach(fmt.Sprintf("sta%04d", i), nil)
		if err != nil {
			tb.Fatal(err)
		}
		ifaces[i] = iface
	}
	return k, m, ifaces
}

// BenchmarkPC5Tx1k measures the sidelink hot path over a 1000-station
// fleet: each op queues one 180-byte broadcast from a rotating
// transmitter onto its SPS grant and advances the simulation, so the
// per-op time covers grant scheduling, slot bookkeeping and the
// 999-receiver completion sweep.
func BenchmarkPC5Tx1k(b *testing.B) {
	k, _, ifaces := pc5Fleet(b, 1000)
	frame := make([]byte, 180)
	horizon := time.Duration(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ifaces[i%len(ifaces)].SendBroadcast(frame); err != nil {
			b.Fatal(err)
		}
		horizon += 5 * time.Millisecond
		if err := k.Run(horizon); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUuRoundTrip measures one RSU→OBU warning over the
// infrastructure path: uplink leg, base-station fan-out, downlink leg
// and delivery, advancing the simulation far enough to complete the
// round every op.
func BenchmarkUuRoundTrip(b *testing.B) {
	k := sim.NewKernel(1)
	l := radio.NewCellularLink(k, radio.Profile5GURLLC())
	rsu, err := l.AttachUu("rsu")
	if err != nil {
		b.Fatal(err)
	}
	obu, err := l.AttachUu("obu")
	if err != nil {
		b.Fatal(err)
	}
	obu.SetReceiver(func([]byte) {})
	frame := make([]byte, 180)
	horizon := time.Duration(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rsu.SendBroadcast(frame); err != nil {
			b.Fatal(err)
		}
		horizon += 50 * time.Millisecond
		if err := k.Run(horizon); err != nil {
			b.Fatal(err)
		}
	}
	if obu.FramesReceived == 0 {
		b.Fatal("no Uu deliveries")
	}
}

package perf

import (
	"fmt"
	"testing"
	"time"

	"itsbed/internal/geo"
	"itsbed/internal/radio"
	"itsbed/internal/sim"
)

// fleet1k attaches n interfaces on a square lattice under a tight
// urban path-loss model (no shadowing, ~83 m communication range at
// 75 m spacing: each station decodes its four lattice neighbours), so
// the spatial grid culls the overwhelming majority of the n−1
// receivers per frame.
func fleet1k(tb testing.TB, n int, disableGrid bool) (*sim.Kernel, *radio.Medium, []*radio.Interface) {
	tb.Helper()
	k := sim.NewKernel(1)
	m := radio.NewMedium(k, radio.MediumConfig{
		PathLoss:    radio.PathLossModel{Exponent: 3.5, ReferenceLossDB: 47.9},
		DisableGrid: disableGrid,
	})
	side := 1
	for side*side < n {
		side++
	}
	ifaces := make([]*radio.Interface, n)
	for i := 0; i < n; i++ {
		p := geo.Point{X: float64(i%side) * 75, Y: float64(i/side) * 75}
		iface, err := m.Attach(radio.InterfaceConfig{Name: fmt.Sprintf("sta%04d", i)}, func() geo.Point { return p })
		if err != nil {
			tb.Fatal(err)
		}
		ifaces[i] = iface
	}
	return k, m, ifaces
}

// benchMedium measures end-to-end frame completion cost: each op puts
// one 180-byte broadcast on the air from a rotating transmitter and
// advances the simulation past its airtime, so the per-op time is
// dominated by reception evaluation across the fleet.
func benchMedium(b *testing.B, disableGrid bool) {
	k, _, ifaces := fleet1k(b, 1000, disableGrid)
	frame := make([]byte, 180)
	horizon := time.Duration(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ifaces[i%len(ifaces)].SendBroadcast(frame); err != nil {
			b.Fatal(err)
		}
		horizon += 5 * time.Millisecond
		if err := k.Run(horizon); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMediumGrid1k and BenchmarkMediumBrute1k pin the tentpole
// speedup: grid-culled reception over a 1000-station fleet must be
// several times cheaper than the brute-force O(N²) scan while
// delivering frame-for-frame identical outcomes (pinned by
// TestGridBruteIdentical1k).
func BenchmarkMediumGrid1k(b *testing.B)  { benchMedium(b, false) }
func BenchmarkMediumBrute1k(b *testing.B) { benchMedium(b, true) }

// TestGridBruteIdentical1k replays the benchmark workload on both
// reception paths and requires identical delivery counters — the
// correctness half of the speedup claim.
func TestGridBruteIdentical1k(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-station fleet")
	}
	type outcome struct{ sent, delivered, lost uint64 }
	run := func(disableGrid bool) outcome {
		k, m, ifaces := fleet1k(t, 1000, disableGrid)
		frame := make([]byte, 180)
		horizon := time.Duration(0)
		for i := 0; i < 2000; i++ {
			if err := ifaces[i%len(ifaces)].SendBroadcast(frame); err != nil {
				t.Fatal(err)
			}
			horizon += 5 * time.Millisecond
			if err := k.Run(horizon); err != nil {
				t.Fatal(err)
			}
		}
		return outcome{m.FramesSent, m.FramesDelivered, m.FramesLost}
	}
	grid, brute := run(false), run(true)
	if grid != brute {
		t.Fatalf("grid %+v != brute %+v", grid, brute)
	}
	if grid.delivered == 0 {
		t.Fatal("benchmark fleet delivers nothing; spacing too wide")
	}
}

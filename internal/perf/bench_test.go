package perf

import (
	"runtime"
	"testing"

	"itsbed"
	"itsbed/internal/campaign"
	"itsbed/internal/experiments"
	"itsbed/internal/its/messages"
	"itsbed/internal/units"
)

// sampleDENM is the collision-risk DENM the RSU emits in the paper's
// blind-corner scenario, with every optional container populated.
func sampleDENM() *messages.DENM {
	d := messages.NewDENM(1001)
	validity := uint32(120)
	d.Management = messages.ManagementContainer{
		ActionID:      messages.ActionID{OriginatingStationID: 1001, SequenceNumber: 7},
		DetectionTime: 700000000123,
		ReferenceTime: 700000000125,
		EventPosition: messages.ReferencePosition{
			Latitude:      units.LatitudeFromDegrees(41.178),
			Longitude:     units.LongitudeFromDegrees(-8.608),
			AltitudeValue: messages.AltitudeUnavailable,
		},
		ValidityDuration: &validity,
		StationType:      units.StationTypeRoadSideUnit,
	}
	d.Situation = &messages.SituationContainer{
		InformationQuality: 3,
		EventType: messages.EventType{
			CauseCode:    messages.CauseCollisionRisk,
			SubCauseCode: messages.CollisionRiskCrossing,
		},
	}
	d.Location = &messages.LocationContainer{Traces: []messages.Trace{{}}}
	return d
}

// sampleCAM is a moving passenger car's CAM.
func sampleCAM() *messages.CAM {
	cam := messages.NewCAM(2001, 42)
	cam.Basic = messages.BasicContainer{
		StationType: units.StationTypePassengerCar,
		Position: messages.ReferencePosition{
			Latitude:      units.LatitudeFromDegrees(41.178),
			Longitude:     units.LongitudeFromDegrees(-8.608),
			AltitudeValue: messages.AltitudeUnavailable,
		},
	}
	cam.HighFrequency = messages.BasicVehicleContainerHighFrequency{
		Heading: 900, HeadingConfidence: 10, Speed: 150, SpeedConfidence: 5,
		VehicleLength: 5, VehicleWidth: 3, Curvature: units.CurvatureUnavailable,
	}
	return cam
}

func BenchmarkDENMEncode(b *testing.B) {
	d := sampleDENM()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := d.Encode(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDENMDecode(b *testing.B) {
	data, err := sampleDENM().Encode()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := itsbed.DecodeDENM(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCAMRoundTrip(b *testing.B) {
	cam := sampleCAM()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		data, err := cam.Encode()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := itsbed.DecodeCAM(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableIIAttempt measures one Table II attempt (assembly plus
// 30 simulated seconds of the emergency-braking chain, ground-truth
// line follower).
func BenchmarkTableIIAttempt(b *testing.B) {
	opt := experiments.ScenarioOptions{BaseSeed: 42, Runs: 1, UseVision: false}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableII(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCampaign1k measures the campaign engine's own overhead on a
// 1000-run campaign with a trivial attempt function, serial vs all
// cores, isolating scheduling and in-order collection cost from the
// simulation itself.
func BenchmarkCampaign1k(b *testing.B) {
	run := func(i int) (int, error) { return i, nil }
	accept := func(v int) bool { return v%2 == 0 }
	for _, w := range []int{1, runtime.NumCPU()} {
		b.Run(map[bool]string{true: "serial", false: "parallel"}[w == 1], func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out, err := campaign.Collect(campaign.Options{Workers: w}, 1000, 2000, run, accept)
				if err != nil {
					b.Fatal(err)
				}
				if len(out) != 1000 {
					b.Fatalf("collected %d", len(out))
				}
			}
		})
	}
}

package perf

import (
	"fmt"
	"math"
	"runtime"
	"testing"
	"time"

	"itsbed"
	"itsbed/internal/campaign"
	"itsbed/internal/experiments"
	"itsbed/internal/geo"
	"itsbed/internal/its/facilities/ldm"
	"itsbed/internal/its/messages"
	"itsbed/internal/units"
)

// sampleDENM is the collision-risk DENM the RSU emits in the paper's
// blind-corner scenario, with every optional container populated.
func sampleDENM() *messages.DENM {
	d := messages.NewDENM(1001)
	validity := uint32(120)
	d.Management = messages.ManagementContainer{
		ActionID:      messages.ActionID{OriginatingStationID: 1001, SequenceNumber: 7},
		DetectionTime: 700000000123,
		ReferenceTime: 700000000125,
		EventPosition: messages.ReferencePosition{
			Latitude:      units.LatitudeFromDegrees(41.178),
			Longitude:     units.LongitudeFromDegrees(-8.608),
			AltitudeValue: messages.AltitudeUnavailable,
		},
		ValidityDuration: &validity,
		StationType:      units.StationTypeRoadSideUnit,
	}
	d.Situation = &messages.SituationContainer{
		InformationQuality: 3,
		EventType: messages.EventType{
			CauseCode:    messages.CauseCollisionRisk,
			SubCauseCode: messages.CollisionRiskCrossing,
		},
	}
	d.Location = &messages.LocationContainer{Traces: []messages.Trace{{}}}
	return d
}

// sampleCAM is a moving passenger car's CAM.
func sampleCAM() *messages.CAM {
	cam := messages.NewCAM(2001, 42)
	cam.Basic = messages.BasicContainer{
		StationType: units.StationTypePassengerCar,
		Position: messages.ReferencePosition{
			Latitude:      units.LatitudeFromDegrees(41.178),
			Longitude:     units.LongitudeFromDegrees(-8.608),
			AltitudeValue: messages.AltitudeUnavailable,
		},
	}
	cam.HighFrequency = messages.BasicVehicleContainerHighFrequency{
		Heading: 900, HeadingConfidence: 10, Speed: 150, SpeedConfidence: 5,
		VehicleLength: 5, VehicleWidth: 3, Curvature: units.CurvatureUnavailable,
	}
	return cam
}

// sampleCPM is an RSU's CPM sharing four perceived objects — the
// occluded-pedestrian scenario's busiest frame.
func sampleCPM() *messages.CPM {
	c := messages.NewCPM(1001, 42)
	c.Management = messages.CpmManagementContainer{
		StationType: units.StationTypeRoadSideUnit,
		Position: messages.ReferencePosition{
			Latitude:      units.LatitudeFromDegrees(41.178),
			Longitude:     units.LongitudeFromDegrees(-8.608),
			AltitudeValue: messages.AltitudeUnavailable,
		},
	}
	for i := 0; i < 4; i++ {
		c.PerceivedObjects = append(c.PerceivedObjects, messages.PerceivedObject{
			ObjectID:          uint16(i + 1),
			TimeOfMeasurement: int16(-40 * i),
			XDistance:         int32(250 - 90*i),
			YDistance:         int32(-300 + 120*i),
			XSpeed:            -100,
			YSpeed:            15,
			Class:             messages.ObjectClassPerson,
			Confidence:        messages.ConfidenceUnavailable,
		})
	}
	return c
}

// benchLDM fills a map with n fresh sensed objects on a ring around
// the origin, the shape the hazard monitor queries every tick.
func benchLDM(b testing.TB, n int) *ldm.Map {
	frame, err := geo.NewFrame(geo.CISTERLab)
	if err != nil {
		b.Fatal(err)
	}
	now := time.Second
	m := ldm.New(ldm.Config{Frame: frame, Now: func() time.Duration { return now }})
	for i := 0; i < n; i++ {
		angle := 2 * math.Pi * float64(i) / float64(n)
		pos := geo.Point{X: 6 * math.Cos(angle), Y: 6 * math.Sin(angle)}
		m.IngestSensedObject(fmt.Sprintf("person-%d", i), units.StationTypePedestrian,
			pos, 1.0, angle)
	}
	return m
}

func BenchmarkDENMEncode(b *testing.B) {
	d := sampleDENM()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := d.Encode(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDENMDecode(b *testing.B) {
	data, err := sampleDENM().Encode()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := itsbed.DecodeDENM(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCAMRoundTrip(b *testing.B) {
	cam := sampleCAM()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		data, err := cam.Encode()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := itsbed.DecodeCAM(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCPMEncode(b *testing.B) {
	c := sampleCPM()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCPMDecode(b *testing.B) {
	data, err := sampleCPM().Encode()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := itsbed.DecodeCPM(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLDMObjectsWithin measures the hazard monitor's LDM range
// query over 64 tracked objects — the path whose sort comparator used
// to recompute every distance O(n log n) times.
func BenchmarkLDMObjectsWithin(b *testing.B) {
	m := benchLDM(b, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := m.ObjectsWithin(geo.Point{}, 8); len(got) != 64 {
			b.Fatalf("query returned %d objects", len(got))
		}
	}
}

// BenchmarkTableIIAttempt measures one Table II attempt (assembly plus
// 30 simulated seconds of the emergency-braking chain, ground-truth
// line follower).
func BenchmarkTableIIAttempt(b *testing.B) {
	opt := experiments.ScenarioOptions{BaseSeed: 42, Runs: 1, UseVision: false}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableII(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCampaign1k measures the campaign engine's own overhead on a
// 1000-run campaign with a trivial attempt function, serial vs all
// cores, isolating scheduling and in-order collection cost from the
// simulation itself.
func BenchmarkCampaign1k(b *testing.B) {
	run := func(i int) (int, error) { return i, nil }
	accept := func(v int) bool { return v%2 == 0 }
	for _, w := range []int{1, runtime.NumCPU()} {
		b.Run(map[bool]string{true: "serial", false: "parallel"}[w == 1], func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out, err := campaign.Collect(campaign.Options{Workers: w}, 1000, 2000, run, accept)
				if err != nil {
					b.Fatal(err)
				}
				if len(out) != 1000 {
					b.Fatalf("collected %d", len(out))
				}
			}
		})
	}
}

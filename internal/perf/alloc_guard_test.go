package perf

import (
	"testing"
	"time"

	"itsbed"
	"itsbed/internal/campaign"
	"itsbed/internal/experiments"
	"itsbed/internal/flight"
	"itsbed/internal/geo"
	"itsbed/internal/radio"
	"itsbed/internal/sim"
)

// Allocation ceilings for the hot paths. These are regression guards,
// not targets: each ceiling sits well above the measured value (see
// EXPERIMENTS.md for the current numbers) so legitimate changes have
// headroom, but far below the pre-optimisation cost, so reintroducing
// per-message or per-attempt garbage fails the suite.
//
// Measured on the reference machine after the zero-allocation work:
//
//	DENM encode             1 alloc/op   (was 5)
//	DENM decode             5 allocs/op
//	CAM encode+decode       2 allocs/op  (was 18)
//	full scenario (vision)  ~2.4k allocs/op (was ~49.5k at the seed;
//	                        the ceiling enforces far more than the
//	                        required 30% reduction)
const (
	maxAllocsDENMEncode     = 8
	maxAllocsDENMDecode     = 16
	maxAllocsCAMRoundTrip   = 16
	maxAllocsCPMRoundTrip   = 16
	maxAllocsTableIIAttempt = 6_000
	maxAllocsScenario       = 10_000
	// Campaign engine overhead per attempt on top of the attempts
	// themselves (channels, result reordering buffer).
	maxAllocsCampaignPerRun = 24
	// One LDM range query over 64 objects: the result slice, the
	// distance cache, and the sort wrapper — nothing per comparison.
	maxAllocsLDMQuery = 24
	// Flight-recorder append: writes into a preallocated ring slot
	// under a mutex — zero heap allocations on the steady-state path.
	maxAllocsFlightAppend = 0
	// C-V2X hot paths: one sidelink broadcast costs the frame copy,
	// the grant/completion closures and the slot-table entry (measured
	// 6 allocs/op); one Uu round trip costs the frame copy and the two
	// leg closures (measured 3 allocs/op).
	maxAllocsPC5Tx       = 16
	maxAllocsUuRoundTrip = 8
)

// guardAllocs runs fn and fails the test when the average allocation
// count exceeds the ceiling.
func guardAllocs(t *testing.T, name string, runs int, ceiling float64, fn func()) {
	t.Helper()
	got := testing.AllocsPerRun(runs, fn)
	if got > ceiling {
		t.Errorf("%s: %.1f allocs/op exceeds the guard ceiling of %.0f", name, got, ceiling)
	}
	t.Logf("%s: %.1f allocs/op (ceiling %.0f)", name, got, ceiling)
}

func TestAllocGuardDENMEncode(t *testing.T) {
	d := sampleDENM()
	guardAllocs(t, "DENM encode", 200, maxAllocsDENMEncode, func() {
		if _, err := d.Encode(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestAllocGuardDENMDecode(t *testing.T) {
	data, err := sampleDENM().Encode()
	if err != nil {
		t.Fatal(err)
	}
	guardAllocs(t, "DENM decode", 200, maxAllocsDENMDecode, func() {
		if _, err := itsbed.DecodeDENM(data); err != nil {
			t.Fatal(err)
		}
	})
}

func TestAllocGuardCAMRoundTrip(t *testing.T) {
	cam := sampleCAM()
	guardAllocs(t, "CAM round-trip", 200, maxAllocsCAMRoundTrip, func() {
		data, err := cam.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := itsbed.DecodeCAM(data); err != nil {
			t.Fatal(err)
		}
	})
}

func TestAllocGuardCPMRoundTrip(t *testing.T) {
	c := sampleCPM()
	guardAllocs(t, "CPM round-trip", 200, maxAllocsCPMRoundTrip, func() {
		data, err := c.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := itsbed.DecodeCPM(data); err != nil {
			t.Fatal(err)
		}
	})
}

// TestAllocGuardLDMObjectsWithin pins the range query's allocation
// profile: the distances are computed once per object and cached, so
// the sort comparator allocates nothing and the whole query costs a
// constant handful of slices regardless of how often it sorts.
func TestAllocGuardLDMObjectsWithin(t *testing.T) {
	m := benchLDM(t, 64)
	guardAllocs(t, "LDM ObjectsWithin (64 objects)", 200, maxAllocsLDMQuery, func() {
		if got := m.ObjectsWithin(geo.Point{}, 8); len(got) != 64 {
			t.Fatalf("query returned %d objects", len(got))
		}
	})
}

// TestAllocGuardFlightAppend pins the black-box recorder's hot path:
// once a station's hook is interned, Record must not allocate — the
// recorder stays always-on without touching the PR 5 alloc budget.
func TestAllocGuardFlightAppend(t *testing.T) {
	rec := flight.NewRecorder(64)
	hook := rec.Hook("guard")
	src := rec.Hook("peer")
	at := time.Duration(0)
	guardAllocs(t, "flight append", 10_000, maxAllocsFlightAppend, func() {
		at += time.Microsecond
		hook.Record(at, flight.RadioTx, 0, 128, 0)
		hook.RecordFrom(at, flight.RadioRx, flight.RxOK, src, 128, 0)
	})
}

// TestAllocGuardPC5Tx pins the sidelink transmit path: queueing a
// frame onto an SPS grant and completing it across the fleet must stay
// a constant handful of allocations.
func TestAllocGuardPC5Tx(t *testing.T) {
	k, _, ifaces := pc5Fleet(t, 2)
	frame := make([]byte, 180)
	horizon := time.Duration(0)
	guardAllocs(t, "PC5 tx", 2000, maxAllocsPC5Tx, func() {
		if err := ifaces[0].SendBroadcast(frame); err != nil {
			t.Fatal(err)
		}
		// One full RRI per op, so every grant fires and the slot table
		// is drained before the next frame queues.
		horizon += 200 * time.Millisecond
		if err := k.Run(horizon); err != nil {
			t.Fatal(err)
		}
	})
}

// TestAllocGuardUuRoundTrip pins the infrastructure path: one uplink +
// fan-out + downlink round must not grow per-message garbage.
func TestAllocGuardUuRoundTrip(t *testing.T) {
	k := sim.NewKernel(1)
	l := radio.NewCellularLink(k, radio.Profile5GURLLC())
	rsu, err := l.AttachUu("rsu")
	if err != nil {
		t.Fatal(err)
	}
	obu, err := l.AttachUu("obu")
	if err != nil {
		t.Fatal(err)
	}
	obu.SetReceiver(func([]byte) {})
	frame := make([]byte, 180)
	horizon := time.Duration(0)
	guardAllocs(t, "Uu round trip", 2000, maxAllocsUuRoundTrip, func() {
		if err := rsu.SendBroadcast(frame); err != nil {
			t.Fatal(err)
		}
		horizon += 50 * time.Millisecond
		if err := k.Run(horizon); err != nil {
			t.Fatal(err)
		}
	})
}

func TestAllocGuardTableIIAttempt(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario attempt guard skipped in -short mode")
	}
	opt := experiments.ScenarioOptions{BaseSeed: 42, Runs: 1, UseVision: false}
	// Warm the attempt pools so the guard measures steady-state cost.
	if _, err := experiments.TableII(opt); err != nil {
		t.Fatal(err)
	}
	guardAllocs(t, "Table II attempt", 3, maxAllocsTableIIAttempt, func() {
		if _, err := experiments.TableII(opt); err != nil {
			t.Fatal(err)
		}
	})
}

func TestAllocGuardScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scenario guard skipped in -short mode")
	}
	// One full vision-enabled emergency-braking scenario. The seed
	// codebase spent ~49.5k allocs here; the ceiling enforces the
	// required ≥30% reduction (≤34.7k) with a wide margin.
	guardAllocs(t, "scenario", 2, maxAllocsScenario, func() {
		res, err := itsbed.RunQuick(1)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Stopped {
			t.Fatal("vehicle did not stop")
		}
	})
}

func TestAllocGuardCampaignEngine(t *testing.T) {
	// Engine overhead only: a 1k-attempt campaign with a trivial run
	// function, serial so the measurement is not smeared across
	// goroutines.
	const n = 1000
	guardAllocs(t, "campaign engine (1k runs)", 3, maxAllocsCampaignPerRun*n, func() {
		out, err := campaign.Collect(campaign.Options{Workers: 1}, n, 2*n,
			func(i int) (int, error) { return i, nil },
			func(v int) bool { return v%2 == 0 })
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != n {
			t.Fatalf("collected %d, want %d", len(out), n)
		}
	})
}

// Package perf holds the testbed's micro-benchmarks and allocation
// regression guards. The guards pin allocs/op ceilings for the hot
// paths (message codec, single scenario attempt, campaign engine) so a
// change that reintroduces per-message or per-attempt garbage fails
// `go test ./internal/perf/` instead of silently eroding campaign
// throughput. See EXPERIMENTS.md for the guard policy and how to
// compare benchmark runs with benchstat.
package perf

package itsbed_test

import (
	"fmt"
	"time"

	"itsbed"
)

// ExampleRunQuick runs one seeded emergency-braking scenario and
// checks the paper's headline claims: the vehicle stops, the
// detection-to-actuation delay stays under 100 ms, and the braking
// distance stays under one vehicle length.
func ExampleRunQuick() {
	res, err := itsbed.RunQuick(7)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("stopped: %v\n", res.Stopped)
	fmt.Printf("under 100 ms: %v\n", res.Intervals.Total < 100*time.Millisecond)
	fmt.Printf("under one vehicle length: %v\n", res.BrakingDistance < 0.53)
	// Output:
	// stopped: true
	// under 100 ms: true
	// under one vehicle length: true
}

// ExampleDecodeDENM decodes the wire bytes of a collision-risk DENM.
func ExampleDecodeDENM() {
	tb, err := itsbed.New(itsbed.Config{Seed: 7})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	var wire []byte
	tb.RSU.DEN.OnTransmit = func(d *itsbed.DENM) {
		wire, _ = d.Encode()
	}
	if _, err := tb.RunScenario(30 * time.Second); err != nil {
		fmt.Println("error:", err)
		return
	}
	d, err := itsbed.DecodeDENM(wire)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("cause: %s (%d/%d)\n",
		d.Situation.EventType.CauseCode,
		d.Situation.EventType.CauseCode,
		d.Situation.EventType.SubCauseCode)
	// Output:
	// cause: collisionRisk (97/2)
}

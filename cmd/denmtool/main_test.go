package main

import (
	"encoding/hex"
	"testing"

	"itsbed/internal/its/messages"
	"itsbed/internal/units"
)

func TestCauses(t *testing.T) {
	if err := run([]string{"causes"}); err != nil {
		t.Fatal(err)
	}
}

func TestCauseDetail(t *testing.T) {
	if err := run([]string{"cause", "97"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"cause", "200"}); err == nil {
		t.Fatal("unknown cause accepted")
	}
	if err := run([]string{"cause", "abc"}); err == nil {
		t.Fatal("non-numeric cause accepted")
	}
}

func TestEncodeDENMDefaults(t *testing.T) {
	if err := run([]string{"encode-denm"}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRoundTrip(t *testing.T) {
	d := messages.NewDENM(1001)
	d.Management = messages.ManagementContainer{
		ActionID:      messages.ActionID{OriginatingStationID: 1001, SequenceNumber: 1},
		DetectionTime: 5,
		ReferenceTime: 5,
		EventPosition: messages.ReferencePosition{AltitudeValue: messages.AltitudeUnavailable},
		StationType:   units.StationTypeRoadSideUnit,
	}
	d.Situation = &messages.SituationContainer{
		EventType: messages.EventType{CauseCode: 97, SubCauseCode: 2},
	}
	data, err := d.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"decode", hex.EncodeToString(data)}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeGarbage(t *testing.T) {
	if err := run([]string{"decode", "zz"}); err == nil {
		t.Fatal("invalid hex accepted")
	}
	if err := run([]string{"decode", "00"}); err == nil {
		t.Fatal("truncated message accepted")
	}
}

func TestExampleCAM(t *testing.T) {
	if err := run([]string{"example-cam"}); err != nil {
		t.Fatal(err)
	}
}

func TestUsage(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing command accepted")
	}
	if err := run([]string{"wat"}); err == nil {
		t.Fatal("unknown command accepted")
	}
}

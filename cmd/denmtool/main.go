// Command denmtool encodes, decodes and inspects ETSI ITS messages.
//
// Usage:
//
//	denmtool causes                      # print the cause-code registry
//	denmtool cause 97                    # detail one cause code
//	denmtool encode-denm -cause 97 -sub 2 -lat 41.178 -lon -8.608
//	denmtool decode <hex>                # decode a CAM or DENM from hex
//	denmtool example-cam                 # encode and dump a sample CAM
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"strconv"

	"itsbed/internal/its/messages"
	"itsbed/internal/units"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "denmtool:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: denmtool <causes|cause|encode-denm|decode|example-cam> ...")
	}
	switch args[0] {
	case "causes":
		for _, c := range messages.AllCauses() {
			fmt.Printf("%3d  %-48s %d sub-causes\n", c.Code, c.Description, len(c.SubCauses))
		}
		return nil
	case "cause":
		if len(args) < 2 {
			return fmt.Errorf("usage: denmtool cause <code>")
		}
		code, err := strconv.Atoi(args[1])
		if err != nil {
			return fmt.Errorf("invalid code %q: %w", args[1], err)
		}
		info, ok := messages.Lookup(messages.CauseCode(code))
		if !ok {
			return fmt.Errorf("cause code %d is not registered", code)
		}
		fmt.Printf("%d %s\n", info.Code, info.Description)
		for sub := messages.SubCauseCode(0); sub < 32; sub++ {
			if d, ok := info.SubCauses[sub]; ok {
				fmt.Printf("  %2d  %s\n", sub, d)
			}
		}
		return nil
	case "encode-denm":
		return encodeDENM(args[1:])
	case "decode":
		if len(args) < 2 {
			return fmt.Errorf("usage: denmtool decode <hex>")
		}
		return decode(args[1])
	case "example-cam":
		return exampleCAM()
	default:
		return fmt.Errorf("unknown command %q", args[0])
	}
}

func encodeDENM(args []string) error {
	fs := flag.NewFlagSet("encode-denm", flag.ContinueOnError)
	cause := fs.Int("cause", int(messages.CauseCollisionRisk), "cause code")
	sub := fs.Int("sub", int(messages.CollisionRiskCrossing), "sub-cause code")
	lat := fs.Float64("lat", 41.178, "event latitude (degrees)")
	lon := fs.Float64("lon", -8.608, "event longitude (degrees)")
	station := fs.Uint("station", 1001, "originating station ID")
	seq := fs.Uint("seq", 1, "action sequence number")
	quality := fs.Uint("quality", 3, "information quality 0..7")
	if err := fs.Parse(args); err != nil {
		return err
	}
	d := messages.NewDENM(units.StationID(*station))
	validity := messages.DefaultValidityDuration
	d.Management = messages.ManagementContainer{
		ActionID: messages.ActionID{
			OriginatingStationID: units.StationID(*station),
			SequenceNumber:       uint16(*seq),
		},
		DetectionTime: 700000000000,
		ReferenceTime: 700000000000,
		EventPosition: messages.ReferencePosition{
			Latitude:      units.LatitudeFromDegrees(*lat),
			Longitude:     units.LongitudeFromDegrees(*lon),
			AltitudeValue: messages.AltitudeUnavailable,
		},
		ValidityDuration: &validity,
		StationType:      units.StationTypeRoadSideUnit,
	}
	d.Situation = &messages.SituationContainer{
		InformationQuality: messages.InformationQuality(*quality),
		EventType: messages.EventType{
			CauseCode:    messages.CauseCode(*cause),
			SubCauseCode: messages.SubCauseCode(*sub),
		},
	}
	d.Location = &messages.LocationContainer{Traces: []messages.Trace{{}}}
	data, err := d.Encode()
	if err != nil {
		return err
	}
	fmt.Printf("%d bytes UPER:\n%s\n", len(data), hex.EncodeToString(data))
	return nil
}

func decode(hexStr string) error {
	data, err := hex.DecodeString(hexStr)
	if err != nil {
		return fmt.Errorf("invalid hex: %w", err)
	}
	msgID, station, err := messages.Peek(data)
	if err != nil {
		return err
	}
	switch msgID {
	case messages.MessageIDDENM:
		d, err := messages.DecodeDENM(data)
		if err != nil {
			return err
		}
		printDENM(d)
	case messages.MessageIDCAM:
		c, err := messages.DecodeCAM(data)
		if err != nil {
			return err
		}
		printCAM(c)
	default:
		return fmt.Errorf("unknown messageID %d from station %d", msgID, station)
	}
	return nil
}

func printDENM(d *messages.DENM) {
	fmt.Printf("DENM from station %d\n", d.Header.StationID)
	fmt.Printf("  actionID          %v\n", d.Management.ActionID)
	fmt.Printf("  detectionTime     %d ms since ITS epoch\n", d.Management.DetectionTime)
	fmt.Printf("  eventPosition     (%.7f, %.7f)\n",
		d.Management.EventPosition.Latitude.Degrees(),
		d.Management.EventPosition.Longitude.Degrees())
	fmt.Printf("  validity          %d s\n", d.Validity())
	fmt.Printf("  termination       %v\n", d.IsTermination())
	if d.Situation != nil {
		et := d.Situation.EventType
		fmt.Printf("  eventType         %d/%d %s: %s\n", et.CauseCode, et.SubCauseCode,
			et.CauseCode, messages.SubCauseDescription(et.CauseCode, et.SubCauseCode))
		fmt.Printf("  quality           %d\n", d.Situation.InformationQuality)
	}
	if d.Location != nil {
		fmt.Printf("  traces            %d\n", len(d.Location.Traces))
	}
}

func printCAM(c *messages.CAM) {
	fmt.Printf("CAM from station %d (%s)\n", c.Header.StationID, c.Basic.StationType)
	fmt.Printf("  generationDelta   %d\n", c.GenerationDeltaTime)
	fmt.Printf("  position          (%.7f, %.7f)\n",
		c.Basic.Position.Latitude.Degrees(), c.Basic.Position.Longitude.Degrees())
	fmt.Printf("  speed             %.2f m/s\n", c.HighFrequency.Speed.MS())
	fmt.Printf("  heading           %.1f deg\n", c.HighFrequency.Heading.Degrees())
	if c.LowFrequency != nil {
		fmt.Printf("  pathHistory       %d points\n", len(c.LowFrequency.PathHistory))
	}
}

func exampleCAM() error {
	cam := messages.NewCAM(2001, 12345)
	cam.Basic = messages.BasicContainer{
		StationType: units.StationTypePassengerCar,
		Position: messages.ReferencePosition{
			Latitude:      units.LatitudeFromDegrees(41.178),
			Longitude:     units.LongitudeFromDegrees(-8.608),
			AltitudeValue: messages.AltitudeUnavailable,
		},
	}
	cam.HighFrequency = messages.BasicVehicleContainerHighFrequency{
		Heading:           units.HeadingFromRadians(0),
		HeadingConfidence: 10,
		Speed:             units.SpeedFromMS(1.5),
		SpeedConfidence:   5,
		VehicleLength:     5,
		VehicleWidth:      3,
		Curvature:         units.CurvatureUnavailable,
	}
	data, err := cam.Encode()
	if err != nil {
		return err
	}
	fmt.Printf("%d bytes UPER:\n%s\n", len(data), hex.EncodeToString(data))
	return nil
}

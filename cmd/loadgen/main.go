// Command loadgen hammers a running testbed daemon (rsud/obud, single
// or service mode) with the deterministic load harness and prints the
// latency/shed table.
//
//	loadgen -url http://127.0.0.1:1188 -rps 500 -duration 30s
//	loadgen -url http://127.0.0.1:1188 -stations 1-500 -rps 2000 \
//	        -duration 60s -thresholds soak_thresholds.json
//
// -stations spreads requests across the multiplexed
// /stations/{id}/... routes: either a comma-separated ID list
// ("7,9,12") or an inclusive range ("1-500"). Without it the legacy
// single-station aliases are used. The endpoint/station schedule is
// seeded (-seed) and reproducible; latencies are wall-clock.
// -thresholds FILE checks the result against a JSON ceilings file and
// exits nonzero on violation.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"itsbed/internal/loadgen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run() error {
	url := flag.String("url", "http://127.0.0.1:1188", "daemon base URL")
	stations := flag.String("stations", "", "station IDs: comma list (7,9) or range (1-500); empty = legacy routes")
	rps := flag.Float64("rps", 100, "aggregate target request rate")
	duration := flag.Duration("duration", 5*time.Second, "run length")
	workers := flag.Int("workers", 8, "client concurrency")
	seed := flag.Int64("seed", 42, "request-schedule seed")
	thresholds := flag.String("thresholds", "", "JSON ceilings file the result must satisfy")
	flag.Parse()

	ids, err := parseStations(*stations)
	if err != nil {
		return err
	}
	result := loadgen.Run(context.Background(), loadgen.Options{
		BaseURL:  *url,
		Stations: ids,
		RPS:      *rps,
		Duration: *duration,
		Workers:  *workers,
		Seed:     *seed,
	})
	fmt.Print(result.Format())
	if *thresholds != "" {
		data, err := os.ReadFile(*thresholds)
		if err != nil {
			return err
		}
		th, err := loadgen.ParseThresholds(data)
		if err != nil {
			return err
		}
		if err := result.Check(th); err != nil {
			return err
		}
		fmt.Println("thresholds: PASS")
	}
	return nil
}

// parseStations accepts "7,9,12" or "1-500" (inclusive).
func parseStations(s string) ([]uint32, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	if lo, hi, ok := strings.Cut(s, "-"); ok && !strings.Contains(s, ",") {
		a, errA := strconv.ParseUint(strings.TrimSpace(lo), 10, 32)
		b, errB := strconv.ParseUint(strings.TrimSpace(hi), 10, 32)
		if errA != nil || errB != nil || a == 0 || b < a {
			return nil, fmt.Errorf("invalid station range %q", s)
		}
		out := make([]uint32, 0, b-a+1)
		for id := a; id <= b; id++ {
			out = append(out, uint32(id))
		}
		return out, nil
	}
	var out []uint32
	for _, part := range strings.Split(s, ",") {
		id, err := strconv.ParseUint(strings.TrimSpace(part), 10, 32)
		if err != nil || id == 0 {
			return nil, fmt.Errorf("invalid station ID %q", part)
		}
		out = append(out, uint32(id))
	}
	return out, nil
}

// Command obud runs an OpenC2X-style On-Board Unit daemon over real
// sockets: the vehicle-side HTTP API (request_denm polled by the
// control script) and a UDP link standing in for the 802.11p air
// interface towards the RSU.
//
//	obud -api :1189 -listen :47002 -peer 127.0.0.1:47001 \
//	     -station 2001 -lat 41.178 -lon -8.608
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"itsbed/internal/geo"
	"itsbed/internal/openc2x"
	"itsbed/internal/units"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "obud:", err)
		os.Exit(1)
	}
}

func run() error {
	api := flag.String("api", ":1189", "HTTP API listen address")
	listen := flag.String("listen", ":47002", "UDP link listen address")
	peers := flag.String("peer", "", "comma-separated UDP peer addresses (RSUs)")
	station := flag.Uint("station", 2001, "station ID")
	lat := flag.Float64("lat", geo.CISTERLab.Lat, "OBU latitude")
	lon := flag.Float64("lon", geo.CISTERLab.Lon, "OBU longitude")
	pprof := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ on the API port")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn or error (per-DENM records log at debug)")
	flag.Parse()

	logger, err := openc2x.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		return err
	}

	var peerList []string
	if *peers != "" {
		peerList = strings.Split(*peers, ",")
	}
	link, err := openc2x.NewUDPLink(*listen, peerList)
	if err != nil {
		return err
	}
	defer link.Close()

	node, err := openc2x.NewRealNode(openc2x.RealNodeConfig{
		StationID:   units.StationID(*station),
		StationType: units.StationTypePassengerCar,
		Position:    geo.LatLon{Lat: *lat, Lon: *lon},
		Link:        link,
		Logger:      logger,
	})
	if err != nil {
		return err
	}
	link.Start(node)

	srv, err := openc2x.NewServer(node, *api)
	if err != nil {
		return err
	}
	if *pprof {
		srv.EnablePprof()
	}
	logger.Info("obud started",
		"station", *station,
		"api", srv.Addr(),
		"endpoints", "/metrics /trace /debug/flight /healthz /buildinfo",
		"link", link.LocalAddr(),
		"peers", peerList)

	done := make(chan os.Signal, 1)
	signal.Notify(done, syscall.SIGINT, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve() }()
	select {
	case sig := <-done:
		// Graceful exit: let in-flight polls finish, then drop any
		// undelivered DENMs and close the radio link (deferred).
		logger.Info("shutting down", "signal", sig.String())
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			logger.Warn("shutdown incomplete, closing", "err", err)
			srv.Close()
		}
		if n := node.DrainMailbox("shutdown"); n > 0 {
			logger.Info("drained mailbox", "undelivered_denms", n)
		}
		return nil
	case err := <-errc:
		return err
	}
}

// Command obud runs an OpenC2X-style On-Board Unit daemon over real
// sockets: the vehicle-side HTTP API (request_denm polled by the
// control script) and a UDP link standing in for the 802.11p air
// interface towards the RSU.
//
//	obud -api :1189 -listen :47002 -peer 127.0.0.1:47001 \
//	     -station 2001 -lat 41.178 -lon -8.608
//
// Service mode (-stations N with N > 1) multiplexes N stations behind
// the same listener under /stations/{id}/..., keeping the legacy
// single-station routes as aliases for the first station. The hot
// path then runs behind admission control: -max-concurrent,
// -max-queue and -request-timeout size the overload limits, and
// -mailbox-cap bounds each station's DENM mailbox.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"itsbed/internal/geo"
	"itsbed/internal/openc2x"
	"itsbed/internal/units"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "obud:", err)
		os.Exit(1)
	}
}

func run() error {
	api := flag.String("api", ":1189", "HTTP API listen address")
	listen := flag.String("listen", ":47002", "UDP link listen address")
	peers := flag.String("peer", "", "comma-separated UDP peer addresses (RSUs)")
	station := flag.Uint("station", 2001, "station ID")
	lat := flag.Float64("lat", geo.CISTERLab.Lat, "OBU latitude")
	lon := flag.Float64("lon", geo.CISTERLab.Lon, "OBU longitude")
	pprof := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ on the API port")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn or error (per-DENM records log at debug)")
	stations := flag.Int("stations", 1, "hosted station count; >1 switches to service mode (one listener multiplexing /stations/{id}/... routes)")
	mailboxCap := flag.Int("mailbox-cap", 0, "per-station DENM mailbox bound (0 = default, negative = unbounded)")
	maxConcurrent := flag.Int("max-concurrent", 0, "service mode: concurrent requests per endpoint (0 = default)")
	maxQueue := flag.Int("max-queue", 0, "service mode: admission queue depth per endpoint; beyond it requests shed with 429 (0 = default)")
	requestTimeout := flag.Duration("request-timeout", 0, "service mode: per-request deadline answered 503 (0 = default)")
	flag.Parse()

	logger, err := openc2x.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		return err
	}

	var peerList []string
	if *peers != "" {
		peerList = strings.Split(*peers, ",")
	}
	link, err := openc2x.NewUDPLink(*listen, peerList)
	if err != nil {
		return err
	}
	defer link.Close()

	if *stations > 1 {
		return serveMux("obud", logger, link, peerList, openc2x.ServiceOptions{
			Addr:           *api,
			Link:           link,
			Stations:       *stations,
			FirstStationID: uint32(*station),
			StationType:    units.StationTypePassengerCar,
			Position:       geo.LatLon{Lat: *lat, Lon: *lon},
			MailboxCap:     *mailboxCap,
			Logger:         logger,
			Limits: openc2x.Limits{
				MaxConcurrent:  *maxConcurrent,
				MaxQueue:       *maxQueue,
				RequestTimeout: *requestTimeout,
			},
		}, *pprof)
	}

	node, err := openc2x.NewRealNode(openc2x.RealNodeConfig{
		StationID:   units.StationID(*station),
		StationType: units.StationTypePassengerCar,
		Position:    geo.LatLon{Lat: *lat, Lon: *lon},
		Link:        link,
		Logger:      logger,
		MailboxCap:  *mailboxCap,
	})
	if err != nil {
		return err
	}
	link.Start(node)

	srv, err := openc2x.NewServer(node, *api)
	if err != nil {
		return err
	}
	if *pprof {
		srv.EnablePprof()
	}
	logger.Info("obud started",
		"station", *station,
		"api", srv.Addr(),
		"endpoints", "/metrics /trace /debug/flight /healthz /buildinfo",
		"link", link.LocalAddr(),
		"peers", peerList)

	done := make(chan os.Signal, 1)
	signal.Notify(done, syscall.SIGINT, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve() }()
	select {
	case sig := <-done:
		// Graceful exit: let in-flight polls finish, then drop any
		// undelivered DENMs and close the radio link (deferred).
		logger.Info("shutting down", "signal", sig.String())
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			logger.Warn("shutdown incomplete, closing", "err", err)
			srv.Close()
		}
		if n := node.DrainMailbox("shutdown"); n > 0 {
			logger.Info("drained mailbox", "undelivered_denms", n)
		}
		return nil
	case err := <-errc:
		return err
	}
}

// serveMux runs service mode: build the fleet, serve until a signal,
// then shut down gracefully draining every hosted mailbox.
func serveMux(name string, logger *slog.Logger, link *openc2x.UDPLink, peerList []string, opts openc2x.ServiceOptions, pprof bool) error {
	srv, err := openc2x.StartService(opts)
	if err != nil {
		return err
	}
	if pprof {
		srv.EnablePprof()
	}
	link.Start(srv)
	logger.Info(name+" started in service mode",
		"stations", opts.Stations,
		"first_station", opts.FirstStationID,
		"api", srv.Addr(),
		"endpoints", "/stations/{id}/... /metrics /ldm /debug/flight /healthz /buildinfo",
		"link", link.LocalAddr(),
		"peers", peerList)

	done := make(chan os.Signal, 1)
	signal.Notify(done, syscall.SIGINT, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve() }()
	select {
	case sig := <-done:
		logger.Info("shutting down", "signal", sig.String())
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		dropped, err := srv.Shutdown(ctx)
		if err != nil {
			logger.Warn("shutdown incomplete, closing", "err", err)
			srv.Close()
		}
		if dropped > 0 {
			logger.Info("drained mailboxes", "undelivered_denms", dropped)
		}
		return nil
	case err := <-errc:
		return err
	}
}

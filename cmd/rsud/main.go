// Command rsud runs an OpenC2X-style Road-Side Unit daemon over real
// sockets: the HTTP API (trigger_denm / request_denm / trigger_cam /
// causes) on one port and a UDP link standing in for the 802.11p air
// interface towards the OBUs.
//
//	rsud -api :1188 -listen :47001 -peer 127.0.0.1:47002 \
//	     -station 1001 -lat 41.178 -lon -8.608
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"itsbed/internal/geo"
	"itsbed/internal/openc2x"
	"itsbed/internal/units"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rsud:", err)
		os.Exit(1)
	}
}

func run() error {
	api := flag.String("api", ":1188", "HTTP API listen address")
	listen := flag.String("listen", ":47001", "UDP link listen address")
	peers := flag.String("peer", "", "comma-separated UDP peer addresses (OBUs)")
	station := flag.Uint("station", 1001, "station ID")
	lat := flag.Float64("lat", geo.CISTERLab.Lat, "RSU latitude")
	lon := flag.Float64("lon", geo.CISTERLab.Lon, "RSU longitude")
	pprof := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ on the API port")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn or error (per-DENM records log at debug)")
	flag.Parse()

	logger, err := openc2x.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		return err
	}

	var peerList []string
	if *peers != "" {
		peerList = strings.Split(*peers, ",")
	}
	link, err := openc2x.NewUDPLink(*listen, peerList)
	if err != nil {
		return err
	}
	defer link.Close()

	node, err := openc2x.NewRealNode(openc2x.RealNodeConfig{
		StationID:   units.StationID(*station),
		StationType: units.StationTypeRoadSideUnit,
		Position:    geo.LatLon{Lat: *lat, Lon: *lon},
		Link:        link,
		Logger:      logger,
	})
	if err != nil {
		return err
	}
	link.Start(node)

	srv, err := openc2x.NewServer(node, *api)
	if err != nil {
		return err
	}
	if *pprof {
		srv.EnablePprof()
	}
	logger.Info("rsud started",
		"station", *station,
		"api", srv.Addr(),
		"endpoints", "/metrics /trace /debug/flight /healthz /buildinfo",
		"link", link.LocalAddr(),
		"peers", peerList)

	done := make(chan os.Signal, 1)
	signal.Notify(done, syscall.SIGINT, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve() }()
	select {
	case sig := <-done:
		// Graceful exit: let in-flight polls finish, then drop any
		// undelivered DENMs and close the radio link (deferred).
		logger.Info("shutting down", "signal", sig.String())
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			logger.Warn("shutdown incomplete, closing", "err", err)
			srv.Close()
		}
		if n := node.DrainMailbox("shutdown"); n > 0 {
			logger.Info("drained mailbox", "undelivered_denms", n)
		}
		return nil
	case err := <-errc:
		return err
	}
}

// Command benchgate compares two `go test -bench` outputs and enforces
// the repository's benchmark regression policy: on every guarded
// benchmark, the median time/op may not regress by more than the
// threshold (default 20%), and the median allocs/op may not regress at
// all. It is a benchstat-style gate with an exit code, so CI can fail
// a pull request on a hot-path regression instead of archiving the
// drift in an artifact nobody reads.
//
// Usage:
//
//	benchgate -baseline BENCH_baseline.txt -current BENCH_now.txt \
//	          -guard 'BenchmarkMedium|BenchmarkDENM' [-max-time-regress 0.20]
//
// Both files hold standard testing output (any -count; repeated runs
// of one benchmark are reduced to the median). Benchmarks present in
// only one file are reported but never fail the gate: adding a
// benchmark must not break CI, and deleting one is reviewed in the
// diff, not here.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// sample is one benchmark line's measurements.
type sample struct {
	nsOp     float64
	allocsOp float64
	// hasAllocs records whether the line carried -benchmem columns.
	hasAllocs bool
}

// series collects all samples of one benchmark name.
type series struct {
	ns     []float64
	allocs []float64
}

var lineRE = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op\s+([\d.]+) allocs/op)?`)

func parseFile(path string) (map[string]*series, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]*series{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		name, s, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		sr := out[name]
		if sr == nil {
			sr = &series{}
			out[name] = sr
		}
		sr.ns = append(sr.ns, s.nsOp)
		if s.hasAllocs {
			sr.allocs = append(sr.allocs, s.allocsOp)
		}
	}
	return out, sc.Err()
}

func parseLine(line string) (string, sample, bool) {
	m := lineRE.FindStringSubmatch(line)
	if m == nil {
		return "", sample{}, false
	}
	ns, err := strconv.ParseFloat(m[2], 64)
	if err != nil {
		return "", sample{}, false
	}
	s := sample{nsOp: ns}
	if m[4] != "" {
		allocs, err := strconv.ParseFloat(m[4], 64)
		if err != nil {
			return "", sample{}, false
		}
		s.allocsOp = allocs
		s.hasAllocs = true
	}
	return m[1], s, true
}

func median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.txt", "baseline benchmark output")
	currentPath := flag.String("current", "", "current benchmark output (required)")
	guard := flag.String("guard", "Benchmark", "regexp of guarded benchmark names")
	maxTime := flag.Float64("max-time-regress", 0.20, "maximum fractional time/op regression")
	flag.Parse()
	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -current is required")
		os.Exit(2)
	}
	guardRE, err := regexp.Compile(*guard)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: bad -guard: %v\n", err)
		os.Exit(2)
	}
	base, err := parseFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	cur, err := parseFile(*currentPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	if len(base) == 0 || len(cur) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no benchmark lines parsed")
		os.Exit(2)
	}

	names := make([]string, 0, len(cur))
	for name := range cur {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	fmt.Printf("%-34s %14s %14s %8s\n", "benchmark", "base ns/op", "cur ns/op", "Δ")
	for _, name := range names {
		c := cur[name]
		b, inBase := base[name]
		curNS := median(c.ns)
		if !inBase {
			fmt.Printf("%-34s %14s %14.1f %8s\n", name, "(new)", curNS, "-")
			continue
		}
		baseNS := median(b.ns)
		delta := curNS/baseNS - 1
		status := ""
		guarded := guardRE.MatchString(name)
		if guarded && delta > *maxTime {
			status = fmt.Sprintf("  FAIL time/op regressed %.1f%% (limit %.0f%%)", delta*100, *maxTime*100)
			failed = true
		}
		if guarded && len(b.allocs) > 0 && len(c.allocs) > 0 {
			ba, ca := median(b.allocs), median(c.allocs)
			if ca > ba {
				status += fmt.Sprintf("  FAIL allocs/op regressed %.0f → %.0f", ba, ca)
				failed = true
			}
		}
		fmt.Printf("%-34s %14.1f %14.1f %+7.1f%%%s\n", name, baseNS, curNS, delta*100, status)
	}
	for name := range base {
		if _, ok := cur[name]; !ok && guardRE.MatchString(name) {
			fmt.Printf("%-34s missing from current run (not failing; remove from baseline if deleted)\n", name)
		}
	}
	if failed {
		fmt.Println("benchgate: FAIL — guarded benchmark regressed beyond policy")
		os.Exit(1)
	}
	fmt.Println("benchgate: ok")
}

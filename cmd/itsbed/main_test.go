package main

import (
	"testing"
)

// The CLI drives the same experiment functions the benches use; these
// tests exercise argument parsing and the thin printing layer with
// minimal run counts.

func TestRunTable1(t *testing.T) {
	if err := run([]string{"table1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunTable2Fast(t *testing.T) {
	if err := run([]string{"table2", "-runs", "2", "-vision=false"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFig7(t *testing.T) {
	if err := run([]string{"fig7"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownCommand(t *testing.T) {
	if err := run([]string{"bogus"}); err == nil {
		t.Fatal("unknown command accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"table2", "-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

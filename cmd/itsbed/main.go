// Command itsbed runs the testbed experiments and prints each table
// and figure of the paper, plus the extension studies.
//
// Usage:
//
//	itsbed table1            # DENM cause-code registry (Table I)
//	itsbed table2            # step-interval measurements (Table II)
//	itsbed table3            # braking distances (Table III)
//	itsbed fig7              # detection reliability per dressing (Fig. 7)
//	itsbed fig10             # video detection-to-stop analysis (Fig. 10)
//	itsbed fig11             # EDF of total delays (Fig. 11)
//	itsbed cdf [-n N]        # EXT-1 large-N latency CDF + fits
//	itsbed radios [-n N]     # EXT-2 ITS-G5 vs cellular comparison
//	itsbed platoon [-n N]    # EXT-3 platoon detection-to-action
//	itsbed baseline [-n N]   # EXT-4 blind-corner V2X vs onboard-only
//	itsbed poll-sweep        # ABL-1 OBU poll-interval ablation
//	itsbed fps-sweep         # ABL-2 camera rate ablation
//	itsbed load-sweep        # ABL-3 channel load / EDCA priority
//	itsbed obstruction       # EXT-5 obstructed-link study
//	itsbed platoon-acc       # EXT-6 platoon string-stability study
//	itsbed ntp-sweep         # ABL-4 clock-sync quality vs measured intervals
//	itsbed resilience        # EXT-7 fault-plan resilience sweep (-faults)
//	itsbed city              # SCALE-1 city-scale density sweep (see below)
//	itsbed cpm               # CPM-1 occluded-pedestrian collective perception study
//	itsbed soak              # SOAK-1 service-mode overload campaign (see below)
//	itsbed bakeoff           # BAKEOFF-1 radio-technology comparison (see below)
//	itsbed all               # everything above (resilience, city, soak and bakeoff excluded)
//
// Common flags: -seed S, -runs R, -vision=(true|false), -workers W,
// -metrics, -trace-out FILE, -spans. Flags may precede or follow the
// command name. Runs execute concurrently on W workers (default: all
// CPUs); results — including the -metrics and trace output — are
// bit-identical for every worker count.
//
// -radio selects the radio backend for the scenario commands (table2,
// table3, fig10, fig11, resilience): its-g5 (default, the paper's
// 802.11p stack), cv2x-pc5 (C-V2X mode-4 sidelink with semi-persistent
// scheduling) or cv2x-uu (C-V2X infrastructure path through the
// base-station/core hop). The bakeoff command runs the Table II chain
// over all three backends and prints per-backend latency and PDR rows.
//
// -faults selects the fault plan for the resilience command: either
// the name of a builtin plan (blackout, burst-loss, crash-rsu,
// crash-obu, camera-dropout, http-flaky, chaos) or the path of a JSON
// plan file. The sweep injects the plan into every run with the
// vehicle's fail-safe watchdog and the edge trigger retries enabled,
// and reports the outcome distribution (warned stop / fail-safe stop /
// miss) plus the latency inflation versus the fault-free baseline.
//
// -blackbox DIR makes the resilience command write flight-recorder
// post-mortems into DIR: every run that trips an anomaly trigger (a
// miss or fail-safe outcome, a 2→5 total above the 100 ms SLO, or any
// injected fault window) dumps its black-box event ring as JSONL plus
// an ASCII timeline. The recorder is always on, so the dump needs no
// re-run; contents are bit-identical for every -workers value. File
// notices go to stderr, keeping stdout golden-stable.
//
// -progress prints a completed/total attempts line on stderr while a
// campaign runs. It observes the deterministic decision path only and
// never perturbs results.
//
// The cpm command runs the occluded-pedestrian crossing with and
// without the Collective Perception service under identical seeds: a
// road-side camera is the only sensor with line of sight, and the
// study compares how early the vehicle brakes when the RSU shares its
// perceived objects in CPMs versus warning with a conventional DENM
// once the pedestrian reaches the lane. Uses -seed, -runs, -workers.
//
// The soak command boots an in-process multiplexed daemon hosting
// -soak-stations stations (default 500) and hammers it with the
// deterministic load harness at -rps for -duration while the fault
// plan (-faults; default: the builtin soak plan) injects API
// timeouts/errors and churns the station table. It prints the latency
// table (p50/p95/p99 per endpoint), shed/deadline counts, mailbox
// drops, peak heap and the goroutine-leak bracket. -thresholds FILE
// checks the result against a committed ceilings file and fails the
// process on violation — the CI soak-smoke gate.
//
// The city command simulates a synthetic road-grid city with DCC-
// throttled CAM traffic and RSU hazard DENMs, and prints a per-density
// table of channel-busy ratio, DCC state occupancy, packet-delivery
// ratio and DENM latency. Its flags: -stations is a comma-separated
// density list (default 100,300,1000), -rsus the road-side unit count,
// -duration the simulated time per density, -grid=false forces the
// brute-force O(N²) medium instead of the spatial culling grid, and
// -dcc=false disables the reactive congestion controller.
//
// -metrics prints, after the table2 output, the per-layer delay
// budget of the warning chain (radio / geonet / facilities /
// openc2x-poll / actuation) plus the merged metrics snapshot of every
// accepted run.
//
// -trace-out writes, for table2, every recorded per-message span as a
// Chrome trace-event JSON file loadable in Perfetto (ui.perfetto.dev)
// or chrome://tracing. -spans prints an ASCII waterfall of each run's
// end-to-end denm.chain trace instead.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"itsbed/internal/experiments"
	"itsbed/internal/faults"
	"itsbed/internal/its/messages"
	"itsbed/internal/loadgen"
	"itsbed/internal/tracing"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "itsbed:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("itsbed", flag.ContinueOnError)
	seed := fs.Int64("seed", 42, "base random seed")
	runs := fs.Int("runs", 0, "number of runs (0 = experiment default)")
	n := fs.Int("n", 0, "sample count for the extension studies (0 = default)")
	vision := fs.Bool("vision", true, "use the full image pipeline in the line follower")
	workers := fs.Int("workers", runtime.NumCPU(), "concurrent scenario runs (results are identical for any value)")
	showMetrics := fs.Bool("metrics", false, "print the per-layer delay budget and metric counters after the experiment")
	traceOut := fs.String("trace-out", "", "write per-message spans as Chrome trace-event JSON to this file (table2)")
	showSpans := fs.Bool("spans", false, "print an ASCII waterfall of each run's end-to-end trace (table2)")
	faultPlan := fs.String("faults", "chaos", "fault plan for the resilience command: builtin name or JSON file path")
	radioName := fs.String("radio", "its-g5", "radio backend for the scenario commands: its-g5, cv2x-pc5 or cv2x-uu")
	stations := fs.String("stations", "", "comma-separated vehicle densities for the city command (default 100,300,1000)")
	rsus := fs.Int("rsus", 0, "road-side unit count for the city command (0 = default)")
	duration := fs.Duration("duration", 0, "simulated time per city density (0 = default)")
	useGrid := fs.Bool("grid", true, "use the spatial culling grid for the city command (false = brute force)")
	useDCC := fs.Bool("dcc", true, "enable reactive DCC for the city command")
	blackbox := fs.String("blackbox", "", "directory for flight-recorder post-mortems of anomalous resilience runs")
	progress := fs.Bool("progress", false, "report run progress on stderr (never perturbs results)")
	soakStations := fs.Int("soak-stations", 0, "hosted station count for the soak command (0 = 500)")
	rps := fs.Float64("rps", 0, "aggregate request rate for the soak command (0 = 400)")
	thresholds := fs.String("thresholds", "", "JSON ceilings file the soak result must satisfy (CI gate)")
	// Accept flags before the command ("-metrics table2") as well as
	// after it ("table2 -metrics").
	cmd := "all"
	if len(args) > 0 && args[0] != "" && args[0][0] != '-' {
		cmd = args[0]
		args = args[1:]
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if cmd == "all" && fs.NArg() > 0 {
		cmd = fs.Arg(0)
	}
	faultsSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "faults" {
			faultsSet = true
		}
	})
	backend, err := experiments.ParseBackend(*radioName)
	if err != nil {
		return err
	}
	opt := experiments.ScenarioOptions{
		BaseSeed:  *seed,
		Runs:      *runs,
		UseVision: *vision,
		Workers:   *workers,
		Radio:     backend,
		Trace:     *traceOut != "" || *showSpans,
	}
	if *progress {
		opt.Progress = stderrProgress()
	}

	dispatch := map[string]func() error{
		"table1":      func() error { return printTable1() },
		"table2":      func() error { return printTable2(opt, *showMetrics, *traceOut, *showSpans) },
		"table3":      func() error { return printTable3(opt) },
		"fig7":        func() error { return printFig7(*seed) },
		"fig10":       func() error { return printFig10(opt) },
		"fig11":       func() error { return printFig11(opt) },
		"cdf":         func() error { return printCDF(*seed, *n, *workers) },
		"radios":      func() error { return printRadios(*seed, *n, *workers) },
		"platoon":     func() error { return printPlatoon(*seed, *n) },
		"baseline":    func() error { return printBaseline(*seed, *n) },
		"poll-sweep":  func() error { return printPollSweep(*seed, *n, *workers) },
		"fps-sweep":   func() error { return printFPSSweep(*seed, *n, *workers) },
		"load-sweep":  func() error { return printLoadSweep(*seed, *n, *workers) },
		"obstruction": func() error { return printObstruction(*seed, *n, *workers) },
		"platoon-acc": func() error { return printPlatoonACC(*seed, *n, *workers) },
		"ntp-sweep":   func() error { return printNTPSweep(*seed, *n, *workers) },
		"resilience":  func() error { return printResilience(opt, *faultPlan, *showMetrics, *blackbox) },
		"city": func() error {
			return printCity(*seed, *stations, *rsus, *duration, *workers, !*useGrid, !*useDCC)
		},
		"cpm":     func() error { return printCPM(*seed, *runs, *workers) },
		"bakeoff": func() error { return printBakeoff(*seed, *runs, *workers, *vision) },
		"soak": func() error {
			planArg := *faultPlan
			if !faultsSet {
				// The resilience default (chaos) targets the scenario sim;
				// soaks default to the overload plan.
				planArg = "soak"
			}
			return printSoak(*seed, *soakStations, *rps, *duration, *workers, planArg, *thresholds)
		},
	}
	if cmd == "all" {
		order := []string{
			"table1", "table2", "table3", "fig7", "fig10", "fig11",
			"cdf", "radios", "platoon", "baseline",
			"poll-sweep", "fps-sweep", "load-sweep", "obstruction", "platoon-acc", "ntp-sweep",
		}
		for _, name := range order {
			if err := dispatch[name](); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			fmt.Println()
		}
		return nil
	}
	fn, ok := dispatch[cmd]
	if !ok {
		return fmt.Errorf("unknown command %q (try: table1 table2 table3 fig7 fig10 fig11 cdf radios platoon baseline poll-sweep fps-sweep load-sweep obstruction platoon-acc ntp-sweep resilience city cpm soak bakeoff all)", cmd)
	}
	return fn()
}

func printCity(seed int64, stations string, rsus int, duration time.Duration, workers int, disableGrid, disableDCC bool) error {
	opt := experiments.CityOptions{
		BaseSeed:    seed + 13000,
		RSUs:        rsus,
		Duration:    duration,
		Workers:     workers,
		DisableGrid: disableGrid,
		DisableDCC:  disableDCC,
	}
	if stations != "" {
		for _, part := range strings.Split(stations, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n <= 0 {
				return fmt.Errorf("invalid -stations entry %q", part)
			}
			opt.Stations = append(opt.Stations, n)
		}
	}
	rows, err := experiments.CitySweep(opt)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatCity(rows, opt))
	return nil
}

// printBakeoff runs the BAKEOFF-1 radio-technology comparison.
func printBakeoff(seed int64, runs, workers int, vision bool) error {
	res, err := experiments.Bakeoff(experiments.BakeoffOptions{
		BaseSeed:  seed,
		Runs:      runs,
		Workers:   workers,
		UseVision: vision,
	})
	if err != nil {
		return err
	}
	fmt.Print(res.Format())
	return nil
}

func printCPM(seed int64, runs, workers int) error {
	res, err := experiments.CPMCampaign(experiments.CPMOptions{
		BaseSeed: seed,
		Runs:     runs,
		Workers:  workers,
	})
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatCPM(res))
	return nil
}

// printSoak runs the SOAK-1 service-mode overload campaign.
func printSoak(seed int64, stations int, rps float64, duration time.Duration, workers int, planArg, thresholdsPath string) error {
	plan, err := loadFaultPlan(planArg)
	if err != nil {
		return err
	}
	report, err := loadgen.RunSoak(context.Background(), loadgen.SoakOptions{
		Stations: stations,
		RPS:      rps,
		Duration: duration,
		Workers:  workers,
		Seed:     seed,
		Plan:     plan,
	})
	if err != nil {
		return err
	}
	fmt.Printf("SOAK-1 service-mode overload campaign (plan %q, seed %d)\n", plan.Name, seed)
	fmt.Print(report.Format())
	if thresholdsPath != "" {
		data, err := os.ReadFile(thresholdsPath)
		if err != nil {
			return err
		}
		th, err := loadgen.ParseThresholds(data)
		if err != nil {
			return err
		}
		if err := report.Result.Check(th); err != nil {
			return err
		}
		fmt.Println("thresholds: PASS")
	}
	return nil
}

// loadFaultPlan resolves -faults: a readable file parses as a JSON
// plan, otherwise the name must be a builtin.
func loadFaultPlan(arg string) (faults.Plan, error) {
	if data, err := os.ReadFile(arg); err == nil {
		plan, err := faults.ParsePlan(data)
		if err != nil {
			return faults.Plan{}, fmt.Errorf("fault plan %s: %w", arg, err)
		}
		return plan, nil
	}
	if plan, ok := faults.BuiltinPlan(arg); ok {
		return plan, nil
	}
	return faults.Plan{}, fmt.Errorf("unknown fault plan %q (builtins: %s; or pass a JSON file path)",
		arg, strings.Join(faults.Builtins(), " "))
}

func printResilience(opt experiments.ScenarioOptions, planArg string, showMetrics bool, blackbox string) error {
	plan, err := loadFaultPlan(planArg)
	if err != nil {
		return err
	}
	res, err := experiments.Resilience(experiments.ResilienceOptions{
		BaseSeed:  opt.BaseSeed,
		Runs:      opt.Runs,
		Workers:   opt.Workers,
		UseVision: opt.UseVision,
		Radio:     opt.Radio,
		Plan:      plan,
		Blackbox:  blackbox,
		Progress:  opt.Progress,
	})
	if err != nil {
		return err
	}
	fmt.Print(res.Format())
	if showMetrics {
		fmt.Println()
		fmt.Print(res.Metrics.Format())
	}
	// Post-mortem notices go to stderr so the report stays byte-stable
	// for golden comparisons.
	for _, f := range res.Dumps {
		fmt.Fprintln(os.Stderr, "itsbed: wrote post-mortem", f)
	}
	return nil
}

// stderrProgress returns a -progress reporter: a completed/total line
// on stderr, throttled to ~4 Hz plus the final line. It runs on the
// campaign's decision goroutine, outside every simulation kernel, so
// it cannot perturb results (a pinned test holds the harness to that).
func stderrProgress() func(done, total int) {
	var last time.Time
	return func(done, total int) {
		if now := time.Now(); done == total || now.Sub(last) >= 250*time.Millisecond {
			last = now
			fmt.Fprintf(os.Stderr, "itsbed: %d/%d attempts\n", done, total)
		}
	}
}

func printPollSweep(seed int64, n, workers int) error {
	rows, err := experiments.PollIntervalSweep(seed+7000, n, nil, workers)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatPollSweep(rows))
	return nil
}

func printFPSSweep(seed int64, n, workers int) error {
	rows, err := experiments.CameraFPSSweep(seed+7100, n, nil, workers)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatFPSSweep(rows))
	return nil
}

func printLoadSweep(seed int64, n, workers int) error {
	rows, err := experiments.ChannelLoadSweep(seed+7200, n, nil, workers)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatLoadSweep(rows))
	return nil
}

func printPlatoonACC(seed int64, n, workers int) error {
	rows, err := experiments.PlatoonACC(seed+9000, n, nil, workers)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatPlatoonACC(rows))
	return nil
}

func printNTPSweep(seed int64, n, workers int) error {
	rows, err := experiments.NTPQualitySweep(seed+11000, n, workers)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatNTPSweep(rows))
	return nil
}

func printObstruction(seed int64, n, workers int) error {
	rows, err := experiments.ObstructedLink(seed+7300, n, workers)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatObstruction(rows))
	return nil
}

func printTable1() error {
	fmt.Println("TABLE I: DENM cause codes (EN 302 637-3 registry subset)")
	fmt.Printf("%-6s %-48s %s\n", "code", "cause", "sub-causes")
	for _, c := range messages.AllCauses() {
		fmt.Printf("%-6d %-48s %d defined\n", c.Code, c.Description, len(c.SubCauses))
	}
	for _, code := range []messages.CauseCode{
		messages.CauseHazardousLocationSurfaceCondition,
		messages.CauseHazardousLocationObstacleOnTheRoad,
		messages.CauseCollisionRisk,
		messages.CauseDangerousSituation,
	} {
		info, _ := messages.Lookup(code)
		fmt.Printf("\n%d %s:\n", code, info.Description)
		for sub := messages.SubCauseCode(0); sub < 12; sub++ {
			if d, ok := info.SubCauses[sub]; ok {
				fmt.Printf("  %2d  %s\n", sub, d)
			}
		}
	}
	return nil
}

func printTable2(opt experiments.ScenarioOptions, showMetrics bool, traceOut string, showSpans bool) error {
	res, err := experiments.TableII(opt)
	if err != nil {
		return err
	}
	fmt.Print(res.Format())
	if showMetrics {
		fmt.Println()
		fmt.Print(res.LayerBudget().Format())
		fmt.Println()
		fmt.Print(res.Metrics.Format())
	}
	if traceOut != "" {
		if err := os.WriteFile(traceOut, tracing.ChromeTrace(res.Traces), 0o644); err != nil {
			return fmt.Errorf("write trace: %w", err)
		}
		fmt.Printf("\nwrote %d spans to %s (load in ui.perfetto.dev or chrome://tracing)\n",
			len(res.Traces.Spans), traceOut)
	}
	if showSpans {
		chains := res.Traces.FilterTraces(func(root tracing.SpanRecord) bool {
			return root.Name == "denm.chain"
		})
		fmt.Println()
		fmt.Print(tracing.Waterfall(chains))
	}
	return nil
}

func printTable3(opt experiments.ScenarioOptions) error {
	res, err := experiments.TableIII(opt)
	if err != nil {
		return err
	}
	fmt.Print(res.Format())
	return nil
}

func printFig7(seed int64) error {
	fmt.Print(experiments.Figure7(seed, 0).Format())
	return nil
}

func printFig10(opt experiments.ScenarioOptions) error {
	res, err := experiments.Figure10(opt)
	if err != nil {
		return err
	}
	fmt.Print(res.Format())
	return nil
}

func printFig11(opt experiments.ScenarioOptions) error {
	res, err := experiments.Figure11(opt)
	if err != nil {
		return err
	}
	fmt.Print(res.Format())
	return nil
}

func printCDF(seed int64, n, workers int) error {
	res, err := experiments.LatencyCDF(seed+1000, n, workers)
	if err != nil {
		return err
	}
	fmt.Print(res.Format())
	return nil
}

func printRadios(seed int64, n, workers int) error {
	res, err := experiments.RadioComparison(seed+2000, n, workers)
	if err != nil {
		return err
	}
	fmt.Print(res.Format())
	return nil
}

func printPlatoon(seed int64, n int) error {
	if n <= 0 {
		n = 8
	}
	for _, mode := range []experiments.PlatoonMode{experiments.PlatoonITSG5, experiments.PlatoonHybrid} {
		res, err := experiments.PlatoonStudy(seed+3000, n, 4, mode)
		if err != nil {
			return err
		}
		fmt.Print(res.Format())
	}
	return nil
}

func printBaseline(seed int64, n int) error {
	res, err := experiments.BlindCorner(seed+4000, n)
	if err != nil {
		return err
	}
	fmt.Print(res.Format())
	return nil
}

module itsbed

go 1.22

// Package itsbed is a laboratory-scale reproduction, in pure Go, of
// the ETSI ITS robotic testbed for network-aided safety-critical
// scenarios (Pinheiro et al., DSN 2023): a 1/10-scale autonomous
// vehicle with an ETSI ITS-G5 On-Board Unit, a road-side
// infrastructure with camera, edge object detection and a Road-Side
// Unit, and the collision-avoidance application in which the
// infrastructure detects an impending collision and issues a DEN
// message that emergency-brakes the vehicle.
//
// The package is a facade over the full implementation:
//
//   - a from-scratch ETSI ITS stack (ASN.1 UPER codec, CAM/DENM
//     messages, BTP, GeoNetworking, CA/DEN facilities, LDM);
//   - an IEEE 802.11p access-layer model (EDCA, airtime, path loss);
//   - the robotic vehicle (bicycle-model physics, Canny +
//     probabilistic-Hough line following, PID steering, USART/PWM
//     actuation);
//   - the road-side perception chain (4 FPS camera, YOLO-style
//     detector model with the paper's Fig. 7 behaviours);
//   - OpenC2X-style HTTP APIs, both simulated and over real sockets;
//   - one experiment harness per table and figure of the paper.
//
// Quick start:
//
//	tb, err := itsbed.New(itsbed.Config{Seed: 1})
//	if err != nil { ... }
//	res, err := tb.RunScenario(30 * time.Second)
//	fmt.Println(res.Intervals.Total) // detection-to-actuation delay
package itsbed

import (
	"time"

	"itsbed/internal/core"
	"itsbed/internal/experiments"
	"itsbed/internal/its/messages"
	"itsbed/internal/track"
)

// Config parameterises a testbed instance. The zero value (plus a
// Seed) reproduces the paper's laboratory setup.
type Config = core.Config

// Testbed is one assembled instance of the ETSI ITS Collision
// Avoidance System.
type Testbed = core.Testbed

// Result is the outcome of one emergency-braking scenario run.
type Result = core.Result

// VideoAnalysis is the Fig. 10 style frame reading of a run.
type VideoAnalysis = core.VideoAnalysis

// Radio interface selectors for Config.Radio.
const (
	RadioITSG5    = core.RadioITSG5
	RadioCellular = core.RadioCellular
)

// New assembles a testbed.
func New(cfg Config) (*Testbed, error) { return core.New(cfg) }

// Layout describes the laboratory floor: guide line, camera pose and
// action point.
type Layout = track.Layout

// PaperLab returns the paper's Fig. 8 floor layout.
func PaperLab() Layout { return track.PaperLab() }

// ScenarioOptions tune the repeated-run experiment harnesses.
type ScenarioOptions = experiments.ScenarioOptions

// Experiment harnesses — one per table/figure of the paper, plus the
// future-work extension studies. See the cmd/itsbed CLI for printed
// forms.
var (
	// TableII reproduces the step-interval table.
	TableII = experiments.TableII
	// TableIII reproduces the braking-distance table.
	TableIII = experiments.TableIII
	// Figure7 quantifies the detection-reliability findings.
	Figure7 = experiments.Figure7
	// Figure10 performs the video-frame detection-to-stop reading.
	Figure10 = experiments.Figure10
	// Figure11 builds the EDF of total delays.
	Figure11 = experiments.Figure11
	// LatencyCDF is the future-work large-N latency study.
	LatencyCDF = experiments.LatencyCDF
	// RadioComparison compares ITS-G5 against cellular profiles.
	RadioComparison = experiments.RadioComparison
	// Platoon runs the platoon emergency-braking scenario.
	Platoon = experiments.Platoon
	// PlatoonStudy aggregates platoon runs over seeds.
	PlatoonStudy = experiments.PlatoonStudy
	// BlindCorner compares network-aided and onboard-only braking at
	// the Fig. 1 crossing scenario.
	BlindCorner = experiments.BlindCorner
	// PollIntervalSweep ablates the OBU polling period.
	PollIntervalSweep = experiments.PollIntervalSweep
	// CameraFPSSweep ablates the road-side processing rate.
	CameraFPSSweep = experiments.CameraFPSSweep
	// ChannelLoadSweep ablates channel load and DENM EDCA priority.
	ChannelLoadSweep = experiments.ChannelLoadSweep
	// ObstructedLink studies DENM delivery through walls with and
	// without DEN repetition.
	ObstructedLink = experiments.ObstructedLink
	// PlatoonACC compares DENM-to-all against sensor-only followers
	// over following gaps (string stability).
	PlatoonACC = experiments.PlatoonACC
	// NTPQualitySweep quantifies timestamping error vs clock sync.
	NTPQualitySweep = experiments.NTPQualitySweep
)

// Platoon delivery modes.
const (
	PlatoonITSG5  = experiments.PlatoonITSG5
	PlatoonHybrid = experiments.PlatoonHybrid
)

// DENM, CAM and CPM message tooling (wire-format encode/decode and
// the Table I cause-code registry).
type (
	// DENM is a Decentralized Environmental Notification Message.
	DENM = messages.DENM
	// CAM is a Cooperative Awareness Message.
	CAM = messages.CAM
	// CPM is a Collective Perception Message.
	CPM = messages.CPM
	// CauseCode is a DENM direct cause code.
	CauseCode = messages.CauseCode
	// EventType pairs a cause and sub-cause code.
	EventType = messages.EventType
)

// DecodeDENM parses a UPER-encoded DENM.
func DecodeDENM(data []byte) (*DENM, error) { return messages.DecodeDENM(data) }

// DecodeCAM parses a UPER-encoded CAM.
func DecodeCAM(data []byte) (*CAM, error) { return messages.DecodeCAM(data) }

// DecodeCPM parses a UPER-encoded CPM.
func DecodeCPM(data []byte) (*CPM, error) { return messages.DecodeCPM(data) }

// RunQuick assembles a default testbed with the given seed and runs
// one emergency-braking scenario.
func RunQuick(seed int64) (*Result, error) {
	tb, err := New(Config{Seed: seed})
	if err != nil {
		return nil, err
	}
	return tb.RunScenario(30 * time.Second)
}

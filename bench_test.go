// Benchmarks regenerating each table and figure of the paper, plus the
// extension studies and micro-benchmarks of the load-bearing
// primitives. Run with:
//
//	go test -bench=. -benchmem
//
// The Table/Figure benches print the regenerated artefact once (on the
// first iteration) and then report the cost of producing it, so a
// single -bench run both reproduces the evaluation and measures the
// harness.
package itsbed_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"itsbed"
	"itsbed/internal/experiments"
	"itsbed/internal/its/messages"
	"itsbed/internal/units"
)

var printOnce sync.Map

// printArtifact emits the regenerated table/figure once per bench.
func printArtifact(b *testing.B, key, text string) {
	b.Helper()
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Printf("\n%s\n", text)
	}
}

// BenchmarkTableI_CauseRegistry regenerates the Table I cause-code
// registry.
func BenchmarkTableI_CauseRegistry(b *testing.B) {
	var text string
	for i := 0; i < b.N; i++ {
		text = ""
		for _, c := range messages.AllCauses() {
			text += fmt.Sprintf("%3d %-48s %d sub-causes\n", c.Code, c.Description, len(c.SubCauses))
		}
	}
	printArtifact(b, "table1", "TABLE I (registry extract):\n"+text)
}

// BenchmarkTableII_EndToEndLatency regenerates Table II: the five-run
// step-interval measurement of the emergency braking chain.
func BenchmarkTableII_EndToEndLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.TableII(experiments.ScenarioOptions{
			BaseSeed: 42, Runs: 5, UseVision: false,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printArtifact(b, "table2", res.Format())
		}
	}
}

// BenchmarkTableIII_BrakingDistance regenerates Table III: seven
// braking-distance runs.
func BenchmarkTableIII_BrakingDistance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.TableIII(experiments.ScenarioOptions{
			BaseSeed: 300, Runs: 7, UseVision: false,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printArtifact(b, "table3", res.Format())
		}
	}
}

// BenchmarkFigure7_DetectionReliability regenerates the Fig. 7
// detection-reliability study.
func BenchmarkFigure7_DetectionReliability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Figure7(9, 500)
		if i == 0 {
			printArtifact(b, "fig7", res.Format())
		}
	}
}

// BenchmarkFigure10_DetectionToStop regenerates the Fig. 10 video
// frame analysis.
func BenchmarkFigure10_DetectionToStop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure10(experiments.ScenarioOptions{
			BaseSeed: 4, Runs: 1, UseVision: false,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printArtifact(b, "fig10", res.Format())
		}
	}
}

// BenchmarkFigure11_EDF regenerates the Fig. 11 empirical distribution
// function of total delays.
func BenchmarkFigure11_EDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure11(experiments.ScenarioOptions{
			BaseSeed: 42, Runs: 5, UseVision: false,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printArtifact(b, "fig11", res.Format())
		}
	}
}

// BenchmarkExt_LatencyCDF regenerates the EXT-1 large-N latency study
// (scaled down per iteration; run cmd/itsbed cdf -n 1000 for the full
// version).
func BenchmarkExt_LatencyCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.LatencyCDF(1000, 60, 0)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printArtifact(b, "cdf", res.Format())
		}
	}
}

// BenchmarkExt_RadioComparison regenerates the EXT-2 interface
// comparison.
func BenchmarkExt_RadioComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RadioComparison(2000, 6, 0)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printArtifact(b, "radios", res.Format())
		}
	}
}

// BenchmarkExt_Platoon regenerates the EXT-3 platoon study.
func BenchmarkExt_Platoon(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.PlatoonStudy(3000, 4, 4, experiments.PlatoonITSG5)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printArtifact(b, "platoon", res.Format())
		}
	}
}

// BenchmarkExt_BlindCornerBaseline regenerates the EXT-4 baseline
// comparison.
func BenchmarkExt_BlindCornerBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.BlindCorner(4000, 6)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printArtifact(b, "baseline", res.Format())
		}
	}
}

// BenchmarkCampaignTableII measures the parallel campaign engine on a
// Table II-sized campaign (Runs=20) across worker counts. Expect
// near-linear scaling from workers=1 to workers=NumCPU; the bench also
// asserts the engine's determinism guarantee by requiring the
// formatted table to be byte-identical for every worker count.
func BenchmarkCampaignTableII(b *testing.B) {
	var mu sync.Mutex
	baseline := ""
	for _, w := range []int{1, 2, 4, 8, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := experiments.TableII(experiments.ScenarioOptions{
					BaseSeed: 42, Runs: 20, UseVision: false, Workers: w,
				})
				if err != nil {
					b.Fatal(err)
				}
				text := res.Format()
				mu.Lock()
				if baseline == "" {
					baseline = text
				} else if text != baseline {
					mu.Unlock()
					b.Fatalf("workers=%d produced a different Table II", w)
				}
				mu.Unlock()
			}
		})
	}
}

// BenchmarkScenario measures one full end-to-end emergency-braking
// scenario (assembly + simulation).
func BenchmarkScenario(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := itsbed.RunQuick(int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if !res.Stopped {
			b.Fatal("vehicle did not stop")
		}
	}
}

// --- micro-benchmarks of the primitives ------------------------------

func benchSampleDENM() *itsbed.DENM {
	d := messages.NewDENM(1001)
	validity := uint32(120)
	d.Management = messages.ManagementContainer{
		ActionID:      messages.ActionID{OriginatingStationID: 1001, SequenceNumber: 7},
		DetectionTime: 700000000123,
		ReferenceTime: 700000000125,
		EventPosition: messages.ReferencePosition{
			Latitude:      units.LatitudeFromDegrees(41.178),
			Longitude:     units.LongitudeFromDegrees(-8.608),
			AltitudeValue: messages.AltitudeUnavailable,
		},
		ValidityDuration: &validity,
		StationType:      units.StationTypeRoadSideUnit,
	}
	d.Situation = &messages.SituationContainer{
		InformationQuality: 3,
		EventType: messages.EventType{
			CauseCode:    messages.CauseCollisionRisk,
			SubCauseCode: messages.CollisionRiskCrossing,
		},
	}
	d.Location = &messages.LocationContainer{Traces: []messages.Trace{{}}}
	return d
}

func BenchmarkDENMEncode(b *testing.B) {
	d := benchSampleDENM()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := d.Encode(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDENMDecode(b *testing.B) {
	data, err := benchSampleDENM().Encode()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := itsbed.DecodeDENM(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCAMEncodeDecode(b *testing.B) {
	cam := messages.NewCAM(2001, 42)
	cam.Basic = messages.BasicContainer{
		StationType: units.StationTypePassengerCar,
		Position: messages.ReferencePosition{
			Latitude:      units.LatitudeFromDegrees(41.178),
			Longitude:     units.LongitudeFromDegrees(-8.608),
			AltitudeValue: messages.AltitudeUnavailable,
		},
	}
	cam.HighFrequency = messages.BasicVehicleContainerHighFrequency{
		Heading: 900, HeadingConfidence: 10, Speed: 150, SpeedConfidence: 5,
		VehicleLength: 5, VehicleWidth: 3, Curvature: units.CurvatureUnavailable,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		data, err := cam.Encode()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := itsbed.DecodeCAM(data); err != nil {
			b.Fatal(err)
		}
	}
}

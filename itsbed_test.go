package itsbed_test

import (
	"testing"
	"time"

	"itsbed"
)

func TestRunQuick(t *testing.T) {
	res, err := itsbed.RunQuick(7)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Fatal("vehicle did not stop")
	}
	if res.Intervals.Total <= 0 || res.Intervals.Total >= 100*time.Millisecond {
		t.Fatalf("total delay %v", res.Intervals.Total)
	}
}

func TestFacadeTestbed(t *testing.T) {
	tb, err := itsbed.New(itsbed.Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tb.RunScenario(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Run.Complete() {
		t.Fatal("chain incomplete")
	}
	if res.BrakingDistance <= 0 {
		t.Fatal("no braking distance")
	}
}

func TestFacadeLayout(t *testing.T) {
	ly := itsbed.PaperLab()
	if ly.ActionPointDistance != 1.52 {
		t.Fatal("paper layout action point")
	}
}

func TestFacadeMessages(t *testing.T) {
	// Encode via the quickstart surface: run the scenario, then decode
	// cause codes through the re-exported registry helpers.
	if itsbed.CauseCode(97).String() != "collisionRisk" {
		t.Fatal("cause registry not reachable through the facade")
	}
}

func TestFacadeExperiments(t *testing.T) {
	res, err := itsbed.TableII(itsbed.ScenarioOptions{BaseSeed: 42, Runs: 3, UseVision: false})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatal("rows")
	}
}

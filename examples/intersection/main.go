// Intersection: the paper's motivating blind-corner use case (Fig. 1).
// A vehicle approaches an intersection without line of sight to the
// hazard; the run is executed twice — once network-aided (the
// road-side infrastructure issues a DENM) and once with onboard-only
// sensing limited by the blind corner — and the stopping outcomes are
// compared.
package main

import (
	"fmt"
	"log"

	"itsbed"
)

func main() {
	const runs = 20
	res, err := itsbed.BlindCorner(11, runs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Blind-corner intersection: network-aided vs onboard-only")
	fmt.Printf("(%d runs per arm; hazard at the camera position; LoS opens late)\n\n", runs)
	fmt.Print(res.Format())
	fmt.Println()

	v2x, onboard := res.V2X, res.Onboard
	fmt.Printf("Margin gained by the infrastructure warning: %.2f m on average\n",
		v2x.Summary.Mean-onboard.Summary.Mean)
	fmt.Printf("Collision rate: %.0f%% network-aided vs %.0f%% onboard-only\n",
		100*float64(v2x.Collisions)/float64(runs),
		100*float64(onboard.Collisions)/float64(runs))
}

// HTTP API: run the OpenC2X-style RSU and OBU nodes over real sockets
// on localhost — genuine HTTP for the API and UDP for the emulated
// 802.11p link — and drive the paper's message flow end to end:
//
//	edge node  --POST /trigger_denm-->  RSU  ~~UDP/GeoNet~~>  OBU
//	vehicle    --POST /request_denm-->  OBU  (DENM delivered)
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"time"

	"itsbed/internal/geo"
	"itsbed/internal/openc2x"
	"itsbed/internal/units"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Two UDP endpoints standing in for the 802.11p radios.
	rsuLink, err := openc2x.NewUDPLink("127.0.0.1:0", nil)
	if err != nil {
		return err
	}
	defer rsuLink.Close()
	obuLink, err := openc2x.NewUDPLink("127.0.0.1:0", nil)
	if err != nil {
		return err
	}
	defer obuLink.Close()
	if err := rsuLink.AddPeer(obuLink.LocalAddr()); err != nil {
		return err
	}
	if err := obuLink.AddPeer(rsuLink.LocalAddr()); err != nil {
		return err
	}

	rsu, err := openc2x.NewRealNode(openc2x.RealNodeConfig{
		StationID:   1001,
		StationType: units.StationTypeRoadSideUnit,
		Position:    geo.CISTERLab,
		Link:        rsuLink,
	})
	if err != nil {
		return err
	}
	rsuLink.Start(rsu)

	obu, err := openc2x.NewRealNode(openc2x.RealNodeConfig{
		StationID:   2001,
		StationType: units.StationTypePassengerCar,
		Position:    geo.CISTERLab,
		Link:        obuLink,
	})
	if err != nil {
		return err
	}
	obuLink.Start(obu)

	rsuAPI, err := openc2x.NewServer(rsu, "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer rsuAPI.Close()
	go func() { _ = rsuAPI.Serve() }()
	obuAPI, err := openc2x.NewServer(obu, "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer obuAPI.Close()
	go func() { _ = obuAPI.Serve() }()

	fmt.Printf("RSU API on http://%s, OBU API on http://%s\n", rsuAPI.Addr(), obuAPI.Addr())

	// The vehicle's control script: poll the OBU for DENMs.
	fmt.Println("polling OBU /request_denm (expecting none yet)...")
	batch, err := requestDENM(obuAPI.Addr())
	if err != nil {
		return err
	}
	fmt.Printf("  got %d DENMs\n", len(batch))

	// The edge node detects a hazard: trigger a DENM at the RSU.
	fmt.Println("edge node POSTs /trigger_denm at the RSU (collision risk, crossing)...")
	start := time.Now()
	trigResp, err := triggerDENM(rsuAPI.Addr(), openc2x.TriggerRequest{
		CauseCode:    97,
		SubCauseCode: 2,
		Latitude:     geo.CISTERLab.Lat,
		Longitude:    geo.CISTERLab.Lon,
		Quality:      3,
	})
	if err != nil {
		return err
	}
	fmt.Printf("  RSU accepted: actionID %d/%d\n", trigResp.OriginatingStationID, trigResp.SequenceNumber)

	// Poll the OBU until the DENM lands (UDP is fast; a few tries).
	for i := 0; i < 50; i++ {
		batch, err = requestDENM(obuAPI.Addr())
		if err != nil {
			return err
		}
		if len(batch) > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(batch) == 0 {
		return fmt.Errorf("DENM never arrived at the OBU")
	}
	d := batch[0]
	fmt.Printf("DENM received at the OBU after %v:\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("  cause %d (%s) / sub-cause %d, event at (%.5f, %.5f)\n",
		d.CauseCode, d.CauseDescription, d.SubCauseCode, d.Latitude, d.Longitude)
	fmt.Println("vehicle control logic would now cut power to the wheels")
	return nil
}

func triggerDENM(addr string, req openc2x.TriggerRequest) (openc2x.TriggerResponse, error) {
	var out openc2x.TriggerResponse
	body, err := json.Marshal(req)
	if err != nil {
		return out, err
	}
	resp, err := http.Post("http://"+addr+"/trigger_denm", "application/json", bytes.NewReader(body))
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return out, err
	}
	if !out.OK {
		return out, fmt.Errorf("trigger_denm failed: %s", out.Error)
	}
	return out, nil
}

func requestDENM(addr string) ([]openc2x.DENMSummary, error) {
	resp, err := http.Post("http://"+addr+"/request_denm", "application/json", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out []openc2x.DENMSummary
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}

// Quickstart: assemble the paper's laboratory testbed, run one
// emergency-braking scenario, and print the Fig. 4 step timeline.
package main

import (
	"fmt"
	"log"
	"time"

	"itsbed"
	"itsbed/internal/trace"
)

func main() {
	tb, err := itsbed.New(itsbed.Config{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	res, err := tb.RunScenario(30 * time.Second)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("ETSI ITS Collision Avoidance System — single run")
	fmt.Println()
	fmt.Println("Step timeline (virtual time):")
	steps := []trace.Step{
		trace.StepActionPoint,
		trace.StepDetection,
		trace.StepRSUSend,
		trace.StepOBUReceive,
		trace.StepActuatorCommand,
		trace.StepHalt,
	}
	for _, s := range steps {
		if t, ok := res.Run.At(s); ok {
			fmt.Printf("  step %d  %-26s t=%.4f s\n", int(s), s, t.Seconds())
		}
	}
	fmt.Println()
	iv := res.Intervals
	fmt.Printf("Detection → RSU send:     %6.1f ms\n", float64(iv.DetectionToSend.Microseconds())/1000)
	fmt.Printf("RSU send  → OBU receive:  %6.1f ms\n", float64(iv.SendToReceive.Microseconds())/1000)
	fmt.Printf("OBU recv  → actuators:    %6.1f ms\n", float64(iv.ReceiveToAction.Microseconds())/1000)
	fmt.Printf("Total detection-to-action:%6.1f ms (paper: < 100 ms)\n", float64(iv.Total.Microseconds())/1000)
	fmt.Println()
	fmt.Printf("Braking distance: %.2f m (vehicle length 0.53 m)\n", res.BrakingDistance)
	fmt.Printf("Vehicle stopped %.2f m from the camera lens\n", res.FinalCameraDistance)
	if res.Video.Valid {
		fmt.Printf("Video reading: crossing frame %.2f s (at %.2f m), stop frame %.2f s → %.0f ms\n",
			res.Video.CrossingFrameTime.Seconds(), res.Video.CrossingFrameDistance,
			res.Video.StopFrameTime.Seconds(),
			float64(res.Video.DetectionToStop.Milliseconds()))
	}
}

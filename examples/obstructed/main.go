// Obstructed: the paper's attenuation-modelling future work in action.
// A wall between the RSU and the approaching vehicle breaks the
// single-shot DENM at a full-scale-equivalent link budget; enabling
// DEN repetition at the hazard service recovers delivery. The example
// prints the wall-material sweep side by side.
package main

import (
	"fmt"
	"log"

	"itsbed"
	"itsbed/internal/experiments"
)

func main() {
	fmt.Println("Obstructed RSU→OBU link: wall-material sweep")
	fmt.Println("(full-scale-equivalent path loss; delivery conditioned on a sent DENM)")
	fmt.Println()

	rows, err := itsbed.ObstructedLink(31, 12, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.FormatObstruction(rows))
	fmt.Println()

	// Highlight the safety consequence of the worst case.
	for _, r := range rows {
		if r.Material != 0 && r.DeliveryRate == 0 {
			fmt.Printf("With a %s wall the single DENM never reaches the vehicle —\n", r.Material)
			fmt.Println("the emergency brake does not happen. The standard's DEN repetition")
			fmt.Printf("(100 ms interval) restores delivery to %.0f%% because the vehicle\n", r.WithRepetitionRate*100)
			fmt.Println("clears the shadow and catches a repeated copy.")
			break
		}
	}
}

// Platoon: the paper's future-work scenario — a platoon of robotic
// vehicles receives the infrastructure's emergency warning, either
// directly over ITS-G5 or through a 5G-capable leader that forwards
// it over 802.11p (the multi-technology arrangement of §V).
package main

import (
	"fmt"
	"log"

	"itsbed"
)

func main() {
	const members = 4

	fmt.Printf("Platoon emergency braking (%d members)\n\n", members)

	// A single run, member by member.
	run, err := itsbed.Platoon(21, members, itsbed.PlatoonITSG5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(run.Format())
	fmt.Println()

	// Averaged study across seeds for both delivery modes.
	study1, err := itsbed.PlatoonStudy(33, 10, members, itsbed.PlatoonITSG5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(study1.Format())
	study2, err := itsbed.PlatoonStudy(33, 10, members, itsbed.PlatoonHybrid)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(study2.Format())
	fmt.Println()
	fmt.Println("The poll-loop quantisation on each vehicle's OBU interface means the")
	fmt.Println("extra 5G hop is often absorbed; averaging across runs reveals it.")
}
